"""Gear-invariant record/replay batch backend: one recording, whole grid.

Every point of a gear sweep re-executes a near-identical discrete-event
stream: the *structure* of an MPI run — which compute blocks run, who
sends what to whom, where the program blocks — does not depend on the
energy gear, only the *timings* and *power levels* do.  The fast-forward
layer (:mod:`repro.mpi.fastforward`) already proves this structural
invariance in steady state via per-iteration signatures; COUNTDOWN
(Cesarini et al.) and Medhat et al.'s power redistribution rest on the
same separation at runtime.

This module exploits it across a whole sweep:

1. **Record.**  One run at a reference gear (the first gear of the
   grid) executes under the ordinary event engine with a transparent
   per-rank tape recorder wrapped around the program generators.  The
   tape holds the gear-invariant segment stream: compute blocks with
   their operation counts, communication edges with payload sizes and
   tags, waits with their handle references, disk bursts, disk-speed
   transitions, and iteration marks (with the fast-forward jumps the
   recording itself took).  The fast-forward signature machinery runs
   during the recording — with the task's own config when set, else in
   an observe-only mode that never jumps — and any signature deviation
   disqualifies the tape.

2. **Certify.**  A tape is replayable only if its structure is provably
   gear-invariant.  Program logic can depend on the gear only through
   :class:`~repro.mpi.requests.Now` (timings leak into control flow) or
   :class:`~repro.mpi.requests.SetGear` (adaptive policies), so either
   request fails certification; everything else resumes with
   gear-invariant values (payloads, handles, skip counts), which makes
   the whole request stream gear-invariant by induction.  Recorded
   fast-forward jumps additionally require consistent reducible-walk
   state at the jump window's boundaries, and a disk-speed change
   inside a replicated window is rejected.

3. **Replay.**  Per-segment durations are revalued for *all* gears in
   one NumPy pass — ``t(f) = uops/(issue_rate · f) + misses · latency``
   elementwise over ``(gears × segments)`` matrices, bitwise-identical
   to the engine's scalar arithmetic — and the tape's *interactions*
   (message completions, the stateful network server pool, recorded
   macro-step jumps) are walked **once for the whole grid**: the tape is
   compiled to structure-of-arrays columns (:func:`compile_columns`)
   plus a gear-invariant schedule (the wire-send order and the
   send↔receive pairing observed by one instrumented scalar replay at
   the recording gear), and every gear's timeline advances in lockstep
   as ``(gears,)`` time vectors.  Stretches between interactions
   collapse to one cumulative-sum gap per gear; receive completions are
   pure ``max`` dataflow because the pairing is FIFO per (source, tag)
   channel and hence gear-invariant.  Two recorded properties *can*
   legitimately vary with the gear and are guarded per gear: a receive
   with a wildcard source/tag (matching order is time-dependent —
   the whole tape replays scalar), and the injection order of wire
   sends through the contended server pool (an inversion or a
   contended tie against the recorded order flags that gear, which is
   re-replayed by the scalar interpreter — exact, reported via
   :class:`ReplayStats`, never silent).  The scalar per-gear
   interpreter (:func:`_replay_gear`) remains the reference path,
   selectable via ``replay_mode="scalar"`` and equivalence-tested
   against the vectorized walk at 1e-9.

4. **Roll up.**  Energy decomposes exactly: each rank draws its idle
   power for the whole run plus a busy *excess* for compute and disk
   segments, so ``E(g) = Σ_phases P_idle(g)·Δt + Σ_seg w·(P_seg(g) −
   P_idle(g))·d_seg(g) + disk-excess`` with the per-segment excess
   vectorized over the grid.  Window weights ``w`` replicate skipped
   cycles exactly as the event path's meter/trace replication does.

Any disqualification raises :class:`BatchUnsupported`; callers fall back
to the event engine point-by-point, which is bitwise-exact by
definition.  A built-in self-check replays the recording gear and
compares against the recording's own measurements at ``SELF_CHECK_RTOL``
before any other gear is trusted.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import count
from typing import Any, Sequence

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.cluster.counters import CounterBank
from repro.cluster.disk import DiskModel
from repro.core.curves import CurvePoint, EnergyTimeCurve
from repro.core.run import RunMeasurement
from repro.mpi.fastforward import FastForwardConfig
from repro.mpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    DiskIO,
    Elapse,
    Irecv,
    Isend,
    IterationMark,
    Now,
    SetDiskSpeed,
    SetGear,
    TraceMark,
    Wait,
)
from repro.mpi.tracing import BLOCKING_OPS
from repro.mpi.world import World, WorldResult
from repro.util.errors import ConfigurationError
from repro.workloads.base import Workload

#: Relative tolerance of the recording-gear self-check: the replay of the
#: reference gear must reproduce the recording's own measurements this
#: closely or the whole tape is rejected.
SELF_CHECK_RTOL = 1e-9

#: A fast-forward config that observes signatures but can never jump —
#: used to certify recordings of tasks that carry no config of their own.
#: ``min_jump`` above any possible iteration count means marks always
#: resume with 0, so the recorded timeline is bitwise what a plain
#: (no fast-forward) event run produces.
_OBSERVE_ONLY = FastForwardConfig(min_jump=1_000_000_000)

# Tape opcodes (first element of every op tuple).
_OP_COMPUTE = 0
_OP_SEND = 1
_OP_RECV = 2
_OP_WAIT = 3
_OP_ELAPSE = 4
_OP_DISK = 5
_OP_DSPEED = 6
_OP_MARK = 7


#: Serialization format of :func:`tape_to_payload`.  Part of every tape
#: cache key, so a format change can never collide with older entries.
TAPE_FORMAT_VERSION = 1


class BatchUnsupported(Exception):
    """The recorded run cannot be revalued across gears.

    Raised when certification fails (a ``Now`` or ``SetGear`` request,
    a signature deviation during the recording, inconsistent jump-window
    state) or when the replay self-check misses.  Callers fall back to
    the exact event engine, which handles every program.
    """


@dataclass
class ReplayStats:
    """How a :func:`replay_grid` call executed each gear column.

    The vectorized walk is conservative: any gear whose interaction
    order cannot be proven to match the recorded schedule is re-replayed
    by the exact scalar interpreter and counted here, so truncated
    vector coverage is visible, never silent.
    """

    #: Gear columns revalued by the vectorized gear-axis walk.
    vector_gears: int = 0
    #: Gear columns replayed by the scalar reference interpreter
    #: (``replay_mode="scalar"``, an ineligible tape, or a guard).
    scalar_gears: int = 0
    #: Scalar columns forced by an order-divergence guard specifically.
    divergent_gears: int = 0
    #: Why whole tapes were routed to the scalar path, when they were.
    fallback_reasons: list[str] = field(default_factory=list)


@dataclass
class Tape:
    """One certified recording, ready to revalue across a gear grid."""

    cluster: ClusterSpec
    workload_name: str
    nodes: int
    #: Per-rank flat op stream (tuples, opcode first).
    ops: list[list[tuple]]
    #: Per-rank compute-segment parameter arrays (float64).
    seg_uops: list[np.ndarray]
    seg_misses: list[np.ndarray]
    seg_stall: list[np.ndarray]
    #: Per-segment replication weight (1 + copies for jump windows).
    seg_weight: list[np.ndarray]
    #: Per-segment reducible-work membership (1.0 in, 0.0 out).
    seg_reducible: list[np.ndarray]
    #: Per-rank gear-independent disk busy-excess energy, joules.
    disk_excess: list[float]
    #: Per-rank number of receive slots.
    recv_slots: list[int]
    #: Weighted hardware-counter totals over all ranks.
    total_uops: float
    total_misses: float
    #: Disk idle power at the initial spindle speed (0.0 without a disk).
    initial_disk_idle: float
    #: The recording's own event-engine measurements, folded to scalars
    #: at record time: the self-check compares four floats per replay
    #: instead of re-walking the recording's traces (``active_time`` and
    #: ``reducible_time`` are O(events) properties).
    recording_time: float
    recording_energy: float
    recording_active: float
    recording_reducible: float
    recording_gear: int
    #: Iterations the recording's fast-forward macro-stepped past.
    recorded_skips: int
    #: Lazily-built compiled form (SoA columns + replay schedule).
    #: Derived state: not part of the tape's identity or its payload.
    _compiled: "CompiledTape | None" = field(
        default=None, repr=False, compare=False
    )


# ----------------------------------------------------------------------
# Recording


def _recording_program(program, tapes: list[list[tuple[Any, Any]]]):
    """Wrap a program factory so every (request, resume value) pair of
    every rank lands on its tape.  The wrapper is transparent: requests
    and values pass through unchanged, so the recording run is bitwise
    the run the event engine would execute without it."""

    def factory(comm):
        entries = tapes[comm.rank]
        gen = program(comm)
        value = None
        while True:
            try:
                request = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = yield request
            entries.append((request, value))

    return factory


def record_tape(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gear: int,
    fast_forward: "FastForwardConfig | None" = None,
) -> Tape:
    """Execute one recording run and build a certified tape.

    Raises:
        BatchUnsupported: the program's structure cannot be certified
            gear-invariant (see the class docstring for the rules).
    """
    workload.validate_nodes(nodes)
    cluster.validate_run(nodes, gear)
    entries: list[list[tuple[Any, Any]]] = [[] for _ in range(nodes)]
    config = fast_forward if fast_forward is not None else _OBSERVE_ONLY
    world = World(
        cluster,
        _recording_program(workload.program, entries),
        nodes=nodes,
        gear=gear,
        fast_forward=config,
    )
    recording = world.run()
    ff = world._ff
    assert ff is not None
    if ff.stats.deviations:
        raise BatchUnsupported(
            f"{ff.stats.deviations} signature deviation(s) during recording: "
            "the event structure is not iteration-stable"
        )
    jumps = {(rank, idx): (jump, period) for rank, idx, jump, period in ff.jump_log}
    return _build_tape(cluster, workload, nodes, gear, entries, jumps, recording)


def _build_tape(
    cluster: ClusterSpec,
    workload: Workload,
    nodes: int,
    gear: int,
    entries: list[list[tuple[Any, Any]]],
    jumps: dict[tuple[int, int], tuple[int, int]],
    recording: WorldResult,
) -> Tape:
    """Convert raw (request, value) streams into the certified tape."""
    node_spec = cluster.node
    issue_rate = node_spec.cpu.issue_rate
    default_latency = node_spec.memory.effective_miss_latency
    disk_model = DiskModel(node_spec.disk) if node_spec.disk else None
    initial_speed = node_spec.disk.fastest if node_spec.disk else None
    initial_disk_idle = (
        disk_model.idle_power(initial_speed) if disk_model is not None else 0.0
    )

    ops_by_rank: list[list[tuple]] = []
    seg_uops: list[np.ndarray] = []
    seg_misses: list[np.ndarray] = []
    seg_stall: list[np.ndarray] = []
    seg_weight: list[np.ndarray] = []
    seg_reducible: list[np.ndarray] = []
    disk_excess: list[float] = []
    recv_slots: list[int] = []
    total_uops = 0.0
    total_misses = 0.0
    recorded_skips = 0

    for rank in range(nodes):
        ops: list[tuple] = []
        uops: list[float] = []
        misses: list[float] = []
        stall: list[float] = []
        handle_map: dict[int, tuple[str, int]] = {}  # uid -> (kind, slot)
        slots = 0
        speed = initial_speed
        # Disk ops as (op position, excess joules) so window weights can
        # be applied after all jumps are known.
        disk_ops: list[tuple[int, float]] = []
        # Reducible-work walk state (structural twin of
        # RankTrace.reducible_time over top-level records in tape order).
        depth = 0
        seen_send = False
        pending: list[int] = []
        reducible: set[int] = set()
        # Mark bookkeeping: request index -> (op position, walk state).
        mark_info: dict[int, tuple[int, bool, bool, int]] = {}
        rank_jumps: list[tuple[int, int, int]] = []  # (mark idx, jump, period)
        # Positions of disk-speed *changes* (must stay outside windows).
        speed_changes: list[int] = []

        for request, value in entries[rank]:
            cls = request.__class__
            if cls is Compute:
                block = request.block
                seg = len(uops)
                latency = (
                    block.miss_latency
                    if block.miss_latency is not None
                    else default_latency
                )
                uops.append(block.uops)
                misses.append(block.l2_misses)
                stall.append(block.l2_misses * latency)
                ops.append((_OP_COMPUTE, seg))
                if depth == 0 and seen_send:
                    pending.append(seg)
            elif cls is Isend:
                ops.append(
                    (
                        _OP_SEND,
                        request.dest,
                        request.tag,
                        request.nbytes,
                        request.dest == rank,
                    )
                )
                handle_map[value.uid] = ("send", -1)
                if depth == 0:
                    seen_send = True
                    pending = []
            elif cls is Irecv:
                ops.append((_OP_RECV, request.source, request.tag, slots))
                handle_map[value.uid] = ("recv", slots)
                slots += 1
            elif cls is Wait:
                kind, slot = handle_map[request.handle.uid]
                if kind == "recv":
                    # Waits on sends never block (eager sends complete at
                    # inject, before the program can reach the wait) and
                    # are not blocking points for the reducible walk, so
                    # they are dropped from the tape entirely.
                    ops.append((_OP_WAIT, slot))
                    if depth == 0:
                        reducible.update(pending)
                        pending = []
                        seen_send = False
            elif cls is TraceMark:
                if request.phase == "begin":
                    depth += 1
                else:
                    depth -= 1
                    if depth == 0 and request.op in BLOCKING_OPS:
                        reducible.update(pending)
                        pending = []
                        seen_send = False
            elif cls is IterationMark:
                if depth != 0:
                    raise BatchUnsupported(
                        f"rank {rank}: iteration mark inside a collective"
                    )
                mark_info[request.index] = (
                    len(ops),
                    seen_send,
                    not pending,
                    request.index,
                )
                skipped = int(value or 0)
                if skipped:
                    jump = jumps.get((rank, request.index))
                    if jump is None or jump[0] != skipped:
                        raise BatchUnsupported(
                            f"rank {rank}: unaccounted macro-step at mark "
                            f"{request.index}"
                        )
                    period = jump[1]
                    ops.append((_OP_MARK, skipped, period))
                    rank_jumps.append((request.index, skipped, period))
                    recorded_skips += skipped
                else:
                    ops.append((_OP_MARK, 0, 0))
            elif cls is Elapse:
                ops.append((_OP_ELAPSE, request.seconds))
            elif cls is DiskIO:
                assert disk_model is not None and speed is not None
                duration = disk_model.io_time(request.nbytes, speed)
                ops.append((_OP_DISK, duration))
                excess = duration * (
                    disk_model.io_power(speed) - disk_model.idle_power(speed)
                )
                disk_ops.append((len(ops) - 1, excess))
            elif cls is SetDiskSpeed:
                assert disk_model is not None
                target = disk_model.spec[request.speed_index]
                if speed is not None and target.index == speed.index:
                    continue  # no-op in the engine: zero time, no record
                speed = target
                speed_changes.append(len(ops))
                ops.append(
                    (
                        _OP_DSPEED,
                        disk_model.spec.transition_time,
                        disk_model.idle_power(target),
                    )
                )
            elif cls is Now or cls is SetGear:
                raise BatchUnsupported(
                    f"rank {rank}: {cls.__name__} request — structure may "
                    "depend on the gear"
                )
            else:
                raise BatchUnsupported(
                    f"rank {rank}: unsupported request {cls.__name__}"
                )

        # Replication weights: ops inside a jump's window (the `period`
        # marks preceding the jump mark) repeat 1 + copies times, exactly
        # as the event path's meter/trace/counter replication does.
        nsegs = len(uops)
        weight = np.ones(nsegs, dtype=np.float64)
        disk_w = {pos: 1.0 for pos, _ in disk_ops}
        for mark_idx, jump, period in rank_jumps:
            end = mark_info.get(mark_idx)
            start = mark_info.get(mark_idx - period)
            if end is None or start is None:
                raise BatchUnsupported(
                    f"rank {rank}: jump window at mark {mark_idx} has no "
                    f"recorded start (period {period})"
                )
            start_pos, start_send, start_clean, _ = start
            end_pos, end_send, end_clean, _ = end
            if not (start_clean and end_clean and start_send == end_send):
                raise BatchUnsupported(
                    f"rank {rank}: reducible-walk state differs across the "
                    f"jump window at mark {mark_idx}"
                )
            for pos in speed_changes:
                if start_pos <= pos < end_pos:
                    raise BatchUnsupported(
                        f"rank {rank}: disk-speed change inside a "
                        "replicated window"
                    )
            copies = jump // period
            for pos in range(start_pos, end_pos):
                op = ops[pos]
                code = op[0]
                if code == _OP_COMPUTE:
                    weight[op[1]] += copies
                elif code == _OP_DISK:
                    disk_w[pos] += copies

        uops_arr = np.asarray(uops, dtype=np.float64)
        misses_arr = np.asarray(misses, dtype=np.float64)
        red = np.zeros(nsegs, dtype=np.float64)
        if reducible:
            red[sorted(reducible)] = 1.0

        ops_by_rank.append(ops)
        seg_uops.append(uops_arr)
        seg_misses.append(misses_arr)
        seg_stall.append(np.asarray(stall, dtype=np.float64))
        seg_weight.append(weight)
        seg_reducible.append(red)
        disk_excess.append(
            math.fsum(disk_w[pos] * excess for pos, excess in disk_ops)
        )
        recv_slots.append(slots)
        total_uops += float(np.sum(weight * uops_arr))
        total_misses += float(np.sum(weight * misses_arr))

    return Tape(
        cluster=cluster,
        workload_name=workload.name,
        nodes=nodes,
        ops=ops_by_rank,
        seg_uops=seg_uops,
        seg_misses=seg_misses,
        seg_stall=seg_stall,
        seg_weight=seg_weight,
        seg_reducible=seg_reducible,
        disk_excess=disk_excess,
        recv_slots=recv_slots,
        total_uops=total_uops,
        total_misses=total_misses,
        initial_disk_idle=initial_disk_idle,
        recording_time=recording.elapsed,
        recording_energy=recording.total_energy,
        recording_active=recording.active_time,
        recording_reducible=recording.reducible_time(),
        recording_gear=gear,
        recorded_skips=recorded_skips,
    )


# ----------------------------------------------------------------------
# Replay


@dataclass
class _ReplayTrace:
    """Schedule observed by one instrumented scalar replay.

    ``sends`` is the execution order of *wire* sends as ``(rank,
    ordinal)`` — the ordinal counts every SEND op of that rank in tape
    order — and ``pairing`` maps each ``(rank, recv slot)`` to the send
    that completed it.  Both are gear-invariant for wildcard-free tapes
    (FIFO per (source, tag) channel); the vector walk follows this
    schedule and guards the send order per gear.
    """

    sends: list[tuple[int, int]] = field(default_factory=list)
    pairing: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )


def _replay_gear(
    tape: Tape,
    durations: list[list[float]],
    trace: _ReplayTrace | None = None,
) -> tuple[list[float], list[list[tuple[float, float]]]]:
    """Re-run the tape's interactions at one gear.

    Returns per-rank finish times and per-rank disk-speed phase
    boundaries ``(time, new disk idle watts)``.  The interpreter mirrors
    :class:`~repro.mpi.world.World` exactly — same matching algorithm,
    same network server pool, same FIFO tie-breaking — so the timeline
    is the event engine's, without generators, traces, or meters.
    With ``trace`` the replay additionally records the wire-send order
    and the send↔receive pairing (see :class:`_ReplayTrace`).
    """
    nodes = tape.nodes
    network = tape.cluster.network_model()
    schedule_transfer = network.schedule_transfer
    overhead = network.endpoint_overhead()
    ops_by_rank = tape.ops
    nops = [len(ops) for ops in ops_by_rank]
    pos = [0] * nodes
    finish: list[float | None] = [None] * nodes
    heap: list[tuple[float, int, int]] = []
    seq = count()
    msg_seq = count(1)
    recv_uid = count()
    recv_post: list[list[float]] = [[0.0] * n for n in tape.recv_slots]
    recv_done: list[list[float | None]] = [[None] * n for n in tape.recv_slots]
    recv_waiting: list[list[bool]] = [[False] * n for n in tape.recv_slots]
    posted: list[dict[tuple[int, int], deque]] = [{} for _ in range(nodes)]
    unexpected: list[dict[tuple[int, int], deque]] = [{} for _ in range(nodes)]
    phases: list[list[tuple[float, float]]] = [[] for _ in range(nodes)]
    marks: list[list[float]] = [[] for _ in range(nodes)]
    # Send ordinals: the k-th SEND op of a rank (any kind) is (rank, k).
    send_ord = [0] * nodes

    def complete(
        rank: int, slot: int, arrival: float, now: float, ident: tuple[int, int]
    ) -> None:
        # Mirrors World._complete_recv: ready + per-endpoint overhead.
        if trace is not None:
            trace.pairing[(rank, slot)] = ident
        ready = max(recv_post[rank][slot], arrival, now)
        done = ready + overhead
        recv_done[rank][slot] = done
        if recv_waiting[rank][slot]:
            recv_waiting[rank][slot] = False
            heappush(heap, (done, next(seq), rank))

    def route(
        dest: int,
        source: int,
        tag: int,
        arrival: float,
        now: float,
        ident: tuple[int, int],
    ) -> None:
        # Mirrors World._route (indexed FIFO, earliest-posted wins).
        pd = posted[dest]
        if pd:
            best_key = None
            best_uid = -1
            for key in (
                (source, tag),
                (ANY_SOURCE, tag),
                (source, ANY_TAG),
                (ANY_SOURCE, ANY_TAG),
            ):
                queue = pd.get(key)
                if queue:
                    uid = queue[0][0]
                    if best_key is None or uid < best_uid:
                        best_key, best_uid = key, uid
            if best_key is not None:
                queue = pd[best_key]
                _, slot = queue.popleft()
                if not queue:
                    del pd[best_key]
                complete(dest, slot, arrival, now, ident)
                return
        ud = unexpected[dest]
        key = (source, tag)
        queue = ud.get(key)
        if queue is None:
            ud[key] = deque(((arrival, next(msg_seq), ident),))
        else:
            queue.append((arrival, next(msg_seq), ident))

    def match_unexpected(rank: int, source: int, tag: int):
        # Mirrors World._match_unexpected (earliest-sent wins).
        ud = unexpected[rank]
        if not ud:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            queue = ud.get((source, tag))
            if not queue:
                return None
            message = queue.popleft()
            if not queue:
                del ud[(source, tag)]
            return message
        best_key = None
        best_seq = -1
        for key, queue in ud.items():
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            mseq = queue[0][1]
            if best_key is None or mseq < best_seq:
                best_key, best_seq = key, mseq
        if best_key is None:
            return None
        queue = ud[best_key]
        message = queue.popleft()
        if not queue:
            del ud[best_key]
        return message

    def advance(rank: int, now: float) -> None:
        ops = ops_by_rank[rank]
        n = nops[rank]
        p = pos[rank]
        durs = durations[rank]
        while True:
            if p == n:
                pos[rank] = p
                finish[rank] = now
                return
            op = ops[p]
            p += 1
            code = op[0]
            if code == _OP_COMPUTE:
                d = durs[op[1]]
                if d != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + d, next(seq), rank))
                    return
            elif code == _OP_SEND:
                _, dest, tag, nbytes, same = op
                ordinal = send_ord[rank]
                send_ord[rank] = ordinal + 1
                inject = now + overhead
                if trace is not None and not same:
                    trace.sends.append((rank, ordinal))
                arrival = schedule_transfer(inject, nbytes, same_node=same)
                route(dest, rank, tag, arrival, now, (rank, ordinal))
                if overhead != 0.0:
                    pos[rank] = p
                    heappush(heap, (inject, next(seq), rank))
                    return
            elif code == _OP_RECV:
                _, source, tag, slot = op
                recv_post[rank][slot] = now
                message = match_unexpected(rank, source, tag)
                if message is not None:
                    complete(rank, slot, message[0], now, message[2])
                else:
                    key = (source, tag)
                    queue = posted[rank].get(key)
                    entry = (next(recv_uid), slot)
                    if queue is None:
                        posted[rank][key] = deque((entry,))
                    else:
                        queue.append(entry)
            elif code == _OP_WAIT:
                done = recv_done[rank][op[1]]
                if done is not None:
                    if done <= now:
                        continue
                    pos[rank] = p
                    heappush(heap, (done, next(seq), rank))
                    return
                recv_waiting[rank][op[1]] = True
                pos[rank] = p
                return
            elif code == _OP_MARK:
                rank_marks = marks[rank]
                rank_marks.append(now)
                skipped = op[1]
                if skipped:
                    period = op[2]
                    copies = skipped // period
                    cycle = now - rank_marks[-1 - period]
                    pos[rank] = p
                    heappush(heap, (now + copies * cycle, next(seq), rank))
                    return
            elif code == _OP_ELAPSE:
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return
            elif code == _OP_DISK:
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return
            else:  # _OP_DSPEED
                phases[rank].append((now, op[2]))
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return

    for rank in range(nodes):
        advance(rank, 0.0)
    while heap:
        now, _, rank = heappop(heap)
        advance(rank, now)
    if any(f is None for f in finish):
        stuck = [r for r, f in enumerate(finish) if f is None]
        raise BatchUnsupported(f"replay stalled on ranks {stuck}")
    return finish, phases  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Compilation: SoA columns + gear-axis replay plan

#: Parameter lanes of :class:`RankColumns` (fixed-width SoA layout).
_INT_LANES = 4
_FLOAT_LANES = 2


@dataclass
class RankColumns:
    """Structure-of-arrays form of one rank's op tape.

    ``codes[i]`` is the opcode of op ``i``; its parameters live in fixed
    lanes of ``ints``/``floats`` (layout in :func:`compile_columns`).
    The mapping is exact: :func:`columns_to_ops` reconstructs the tuple
    stream value-for-value, so the columns — not the tuples — are the
    form the vectorized replay plan is built from.
    """

    codes: np.ndarray  # (n,) int64 opcodes
    ints: np.ndarray  # (n, 4) int64 integer parameters
    floats: np.ndarray  # (n, 2) float64 parameters


def compile_columns(ops: Sequence[tuple]) -> RankColumns:
    """Compile one rank's op tuples into SoA columns.

    Lane layout (unused lanes are zero):

    ========  ======================================  =========================
    opcode    ``ints`` lanes                          ``floats`` lanes
    ========  ======================================  =========================
    COMPUTE   0: segment index                        —
    SEND      0: dest, 1: tag, 2: nbytes, 3: same     —
    RECV      0: source, 1: tag, 2: slot              —
    WAIT      0: slot                                 —
    ELAPSE    —                                       0: seconds
    DISK      —                                       0: duration
    DSPEED    —                                       0: transition, 1: idle W
    MARK      0: skipped, 1: period                   —
    ========  ======================================  =========================
    """
    n = len(ops)
    codes = np.zeros(n, dtype=np.int64)
    ints = np.zeros((n, _INT_LANES), dtype=np.int64)
    floats = np.zeros((n, _FLOAT_LANES), dtype=np.float64)
    for i, op in enumerate(ops):
        code = op[0]
        codes[i] = code
        if code == _OP_COMPUTE:
            ints[i, 0] = op[1]
        elif code == _OP_SEND:
            ints[i, 0] = op[1]
            ints[i, 1] = op[2]
            ints[i, 2] = op[3]
            ints[i, 3] = 1 if op[4] else 0
        elif code == _OP_RECV:
            ints[i, 0] = op[1]
            ints[i, 1] = op[2]
            ints[i, 2] = op[3]
        elif code == _OP_WAIT:
            ints[i, 0] = op[1]
        elif code == _OP_MARK:
            ints[i, 0] = op[1]
            ints[i, 1] = op[2]
        elif code in (_OP_ELAPSE, _OP_DISK):
            floats[i, 0] = op[1]
        else:  # _OP_DSPEED
            floats[i, 0] = op[1]
            floats[i, 1] = op[2]
    return RankColumns(codes=codes, ints=ints, floats=floats)


def columns_to_ops(columns: RankColumns) -> list[tuple]:
    """Reconstruct the op tuple stream from SoA columns (exact inverse)."""
    ops: list[tuple] = []
    codes = columns.codes
    ints = columns.ints
    floats = columns.floats
    for i in range(len(codes)):
        code = int(codes[i])
        if code == _OP_COMPUTE:
            ops.append((code, int(ints[i, 0])))
        elif code == _OP_SEND:
            ops.append(
                (
                    code,
                    int(ints[i, 0]),
                    int(ints[i, 1]),
                    int(ints[i, 2]),
                    bool(ints[i, 3]),
                )
            )
        elif code == _OP_RECV:
            ops.append(
                (code, int(ints[i, 0]), int(ints[i, 1]), int(ints[i, 2]))
            )
        elif code == _OP_WAIT:
            ops.append((code, int(ints[i, 0])))
        elif code == _OP_MARK:
            ops.append((code, int(ints[i, 0]), int(ints[i, 1])))
        elif code in (_OP_ELAPSE, _OP_DISK):
            ops.append((code, float(floats[i, 0])))
        else:  # _OP_DSPEED
            ops.append((code, float(floats[i, 0]), float(floats[i, 1])))
    return ops


# Interaction kinds of the vectorized replay plan.  Everything that is
# not an interaction is a pure delay and is folded into the gaps.
_IN_WIRE = 0  # wire send through the (possibly pooled) backplane
_IN_LOCAL = 1  # rank-to-self memcpy send (stateless)
_IN_RECV = 2  # receive post (records the post-time vector)
_IN_WAIT = 3  # blocking wait on a receive slot (timeline boundary)
_IN_MARK = 4  # iteration mark / recorded macro-step jump
_IN_PHASE = 5  # disk-speed transition (idle-power phase boundary)
_IN_END = 6  # sentinel: apply the tail gap, record the finish time


@dataclass
class _RankPlan:
    """One rank's interaction schedule for the gear-axis walk.

    Everything between two interactions is a *gap*: a gear-independent
    constant (endpoint overheads, elapses, disk busy time, disk-speed
    transitions) plus a contiguous run ``[lo, hi)`` of compute segments
    whose durations scale with the gear.  ``steps[k]`` is ``(kind,
    *params)`` and gap ``k`` precedes it; the last step is the
    :data:`_IN_END` sentinel whose gap is the tape's tail.

    ``boundary_before[k]`` is 1 + the index of the last
    timeline-resetting interaction (a WAIT or a recorded jump) strictly
    before ``k``, or 0 at the start of the tape.  Between boundaries the
    timeline is an affine offset from the boundary's base time, so the
    walk precomputes every offset vector with two cumulative sums and
    touches Python only at the interactions — its cost is independent
    of the gear count.

    The receive-side endpoint overhead is pre-folded: a completion is
    ``max(post, arrival) + overhead``, which equals ``max(post +
    overhead, arrival + overhead)`` exactly (IEEE addition is
    monotone), so send steps carry ``overhead`` inside their arrival
    constants and ``recv_rows`` names the offset rows that get it added
    once per walk — the WAIT step then needs no addition of its own.
    """

    steps: list[tuple]
    gap_const: np.ndarray  # (K,) float64
    gap_lo: np.ndarray  # (K,) int64 segment-range starts
    gap_hi: np.ndarray  # (K,) int64 segment-range ends (exclusive)
    boundary_before: np.ndarray  # (K,) int64
    recv_rows: np.ndarray  # (R,) int64 indices of _IN_RECV steps


def _build_plan(
    tape: Tape, rank: int, columns: RankColumns, trace: _ReplayTrace
) -> _RankPlan:
    """Fold one rank's columns + the observed schedule into a plan."""
    link = tape.cluster.network_model().spec
    overhead = link.software_overhead
    pooled = link.concurrency is not None
    codes = columns.codes
    ints = columns.ints
    floats = columns.floats
    # Ranks with no recorded jump never read the mark history, so plain
    # marks compile to nothing at all (dense recordings have thousands).
    mark_rows = codes == _OP_MARK
    has_jump = bool(mark_rows.any()) and bool((ints[mark_rows, 0] > 0).any())

    steps: list[tuple] = []
    gap_const: list[float] = []
    gap_lo: list[int] = []
    gap_hi: list[int] = []
    const = 0.0
    lo = 0
    hi = 0
    ordinal = 0

    def emit(step: tuple) -> None:
        nonlocal const, lo
        steps.append(step)
        gap_const.append(const)
        gap_lo.append(lo)
        gap_hi.append(hi)
        const = 0.0
        lo = hi

    for i in range(len(codes)):
        code = int(codes[i])
        if code == _OP_COMPUTE:
            seg = int(ints[i, 0])
            assert seg == hi, "segments must be contiguous in tape order"
            hi = seg + 1
        elif code == _OP_SEND:
            # The sender-side overhead precedes the injection, so folding
            # it into the gap makes the walk's time *be* the inject time;
            # the receiver-side overhead rides inside the arrival const.
            const += overhead
            nbytes = int(ints[i, 2])
            if ints[i, 3]:
                emit(
                    (
                        _IN_LOCAL,
                        ordinal,
                        nbytes / link.memcpy_bandwidth + overhead,
                    )
                )
            else:
                occupancy = nbytes / link.bandwidth
                emit(
                    (
                        _IN_WIRE,
                        ordinal,
                        occupancy,
                        link.latency + occupancy + overhead,
                    )
                )
            ordinal += 1
        elif code == _OP_RECV:
            emit((_IN_RECV, int(ints[i, 2])))
        elif code == _OP_WAIT:
            slot = int(ints[i, 0])
            src, sord = trace.pairing[(rank, slot)]
            emit((_IN_WAIT, slot, src, sord))
        elif code in (_OP_ELAPSE, _OP_DISK):
            const += float(floats[i, 0])
        elif code == _OP_DSPEED:
            emit((_IN_PHASE, float(floats[i, 1])))
            const += float(floats[i, 0])
        else:  # _OP_MARK
            if has_jump:
                emit((_IN_MARK, int(ints[i, 0]), int(ints[i, 1])))
    emit((_IN_END,))

    boundary = np.zeros(len(steps), dtype=np.int64)
    recv_rows: list[int] = []
    b = 0
    for k, step in enumerate(steps):
        boundary[k] = b
        kind = step[0]
        if kind == _IN_WAIT or (kind == _IN_MARK and step[1]):
            b = k + 1
        elif kind == _IN_RECV:
            recv_rows.append(k)
    return _RankPlan(
        steps=steps,
        gap_const=np.asarray(gap_const, dtype=np.float64),
        gap_lo=np.asarray(gap_lo, dtype=np.int64),
        gap_hi=np.asarray(gap_hi, dtype=np.int64),
        boundary_before=boundary,
        recv_rows=np.asarray(recv_rows, dtype=np.int64),
    )


@dataclass
class CompiledTape:
    """Derived form of a tape: SoA columns, plans, observed schedule.

    Built lazily by :func:`_compiled` and cached on the tape, so
    repeated grid replays of one tape pay only the vectorized walk.
    ``eligible`` is False when the tape cannot be walked vectorized at
    all (wildcard receives); ``reason`` says why.
    """

    eligible: bool
    reason: str | None
    columns: list[RankColumns]
    plans: list[_RankPlan]
    schedule: _ReplayTrace


def _vector_ineligible(tape: Tape) -> str | None:
    """A whole-tape reason the vectorized walk cannot run, or None.

    Wildcard receives make the matching order time-dependent, so the
    recorded pairing cannot be certified gear-invariant; such tapes
    replay through the scalar interpreter for every gear.
    """
    for rank, ops in enumerate(tape.ops):
        for op in ops:
            if op[0] == _OP_RECV and (
                op[1] == ANY_SOURCE or op[2] == ANY_TAG
            ):
                return (
                    f"rank {rank}: wildcard receive — matching order is "
                    "time-dependent"
                )
    return None


def _compile_tape(tape: Tape) -> CompiledTape:
    """Compile a tape: columns, one instrumented scalar replay, plans."""
    reason = _vector_ineligible(tape)
    if reason is not None:
        return CompiledTape(False, reason, [], [], _ReplayTrace())
    columns = [compile_columns(ops) for ops in tape.ops]
    trace = _ReplayTrace()
    durations = [
        d.tolist() for d in _segment_durations(tape, tape.recording_gear)
    ]
    _replay_gear(tape, durations, trace)
    plans = [
        _build_plan(tape, rank, columns[rank], trace)
        for rank in range(tape.nodes)
    ]
    return CompiledTape(True, None, columns, plans, trace)


def _compiled(tape: Tape) -> CompiledTape:
    if tape._compiled is None:
        tape._compiled = _compile_tape(tape)
    return tape._compiled


def _segment_durations(tape: Tape, gear_index: int) -> list[np.ndarray]:
    """Per-rank compute-segment durations at one gear, engine-exact."""
    cluster = tape.cluster
    cpu = cluster.node.cpu
    denom = cpu.issue_rate * cluster.gears[gear_index].frequency_hz
    return [
        tape.seg_uops[rank] / denom + tape.seg_stall[rank]
        for rank in range(tape.nodes)
    ]


def _duration_grid(
    tape: Tape, gear_indices: Sequence[int]
) -> list[np.ndarray]:
    """Per-rank ``(gears, segments)`` duration matrices.

    Elementwise identical to :func:`_segment_durations` per row: the
    broadcast performs the same scalar division and addition per cell.
    """
    cluster = tape.cluster
    cpu = cluster.node.cpu
    denom = np.asarray(
        [
            cpu.issue_rate * cluster.gears[g].frequency_hz
            for g in gear_indices
        ],
        dtype=np.float64,
    )
    return [
        tape.seg_uops[rank][None, :] / denom[:, None]
        + tape.seg_stall[rank][None, :]
        for rank in range(tape.nodes)
    ]


def _vector_walk(
    tape: Tape, compiled: CompiledTape, dur_grid: list[np.ndarray]
) -> tuple[
    list[np.ndarray], list[list[tuple[np.ndarray, float]]], np.ndarray
]:
    """Walk the recorded schedule once for every gear column.

    Returns per-rank ``(gears,)`` finish-time vectors, per-rank
    disk-phase boundary lists, and a boolean mask over gear columns
    flagging those whose wire-send order could not be certified against
    the recorded schedule — an injection-order inversion, or a tie
    (within noise) involving a contended transfer.  Flagged columns
    must be re-replayed by the scalar interpreter.
    """
    nodes = tape.nodes
    G = dur_grid[0].shape[0]
    link = tape.cluster.network_model().spec
    overhead = link.software_overhead
    conc = link.concurrency

    # Precompute every interaction's offset from its block boundary:
    # gap vectors via one gather on the segment cumsum, then a blockwise
    # cumulative sum.  (K, G) layout so offs[k] is a contiguous row.
    offs: list[np.ndarray] = []
    zero_col = np.zeros((G, 1))
    for rank in range(nodes):
        plan = compiled.plans[rank]
        D = dur_grid[rank]
        segcum = np.concatenate([zero_col, np.cumsum(D, axis=1)], axis=1)
        gaps = plan.gap_const[None, :] + (
            segcum[:, plan.gap_hi] - segcum[:, plan.gap_lo]
        )
        cpad = np.concatenate([zero_col, np.cumsum(gaps, axis=1)], axis=1)
        off_mat = np.ascontiguousarray(
            (cpad[:, 1:] - cpad[:, plan.boundary_before]).T
        )
        if overhead != 0.0 and len(plan.recv_rows):
            # Receive posts carry the completion overhead (see
            # _RankPlan): max(post, arrival) + oh == max(post+oh, arr+oh).
            off_mat[plan.recv_rows] += overhead
        offs.append(off_mat)

    start_vec = np.zeros(G)
    base: list[np.ndarray] = [start_vec] * nodes
    ptr = [0] * nodes
    arrivals: dict[tuple[int, int], np.ndarray] = {}
    posts: list[list[np.ndarray | None]] = [
        [None] * n for n in tape.recv_slots
    ]
    phases: list[list[tuple[np.ndarray, float]]] = [[] for _ in range(nodes)]
    mark_hist: list[list[np.ndarray]] = [[] for _ in range(nodes)]
    finish: list[np.ndarray | None] = [None] * nodes
    servers = np.zeros((conc, G)) if conc is not None else None
    gcols = np.arange(G)
    inj_rows: list[np.ndarray] = []
    start_rows: list[np.ndarray] = []

    np_maximum = np.maximum

    def advance(rank: int, upto: int | None) -> None:
        plan = compiled.plans[rank]
        steps = plan.steps
        off = offs[rank]
        rank_posts = posts[rank]
        b = base[rank]
        k = ptr[rank]
        while True:
            step = steps[k]
            kind = step[0]
            if kind == _IN_WAIT:
                done = np_maximum(
                    rank_posts[step[1]], arrivals[(step[2], step[3])]
                )
                b = np_maximum(b + off[k], done)
                k += 1
            elif kind == _IN_WIRE:
                inject = b + off[k]
                if servers is None:
                    arrivals[(rank, step[1])] = inject + step[3]
                else:
                    idx = servers.argmin(axis=0)
                    free_at = servers[idx, gcols]
                    start = np_maximum(inject, free_at)
                    servers[idx, gcols] = start + step[2]
                    arrivals[(rank, step[1])] = start + step[3]
                    inj_rows.append(inject)
                    start_rows.append(start)
                k += 1
                if step[1] == upto:
                    break
            elif kind == _IN_RECV:
                rank_posts[step[1]] = b + off[k]
                k += 1
            elif kind == _IN_LOCAL:
                arrivals[(rank, step[1])] = b + (off[k] + step[2])
                k += 1
            elif kind == _IN_MARK:
                t = b + off[k]
                hist = mark_hist[rank]
                hist.append(t)
                skipped = step[1]
                if skipped:
                    period = step[2]
                    cycle = t - hist[-1 - period]
                    b = t + (skipped // period) * cycle
                k += 1
            elif kind == _IN_PHASE:
                phases[rank].append((b + off[k], step[1]))
                k += 1
            else:  # _IN_END
                finish[rank] = b + off[k]
                k += 1
                break
        base[rank] = b
        ptr[rank] = k

    # Wire sends drive the walk in the recorded schedule order (the
    # pooled backplane is the only stateful cross-rank resource); the
    # drain then runs every rank to its end — all remaining waits pair
    # with sends already scheduled.
    for rank, ordinal in compiled.schedule.sends:
        advance(rank, ordinal)
    for rank in range(nodes):
        if finish[rank] is None:
            advance(rank, None)

    divergent = np.zeros(G, dtype=bool)
    if servers is not None and len(inj_rows) > 1:
        inj = np.stack(inj_rows)
        starts = np.stack(start_rows)
        contended = starts > inj
        diffs = inj[1:] - inj[:-1]
        tie_tol = 1e-9 * max(1.0, float(np.max(np.abs(inj))))
        near = np.abs(diffs) <= tie_tol
        divergent = (diffs < 0).any(axis=0) | (
            near & (contended[1:] | contended[:-1])
        ).any(axis=0)
    return finish, phases, divergent  # type: ignore[return-value]


def _measure_gear(tape: Tape, gear_index: int) -> RunMeasurement:
    """Scalar reference path: replay + roll up one gear exactly.

    This is PR 7's per-gear loop body, unchanged float-for-float; the
    vectorized grid falls back to it per gear column when the send-order
    guard fires, and ``replay_mode="scalar"`` runs it for every gear.
    """
    cluster = tape.cluster
    node_spec = cluster.node
    cpu = node_spec.cpu
    power_model = node_spec.power_model()
    cpu_model = power_model.cpu_model
    ref_bw = node_spec.memory.reference_miss_bandwidth
    upm = CounterBank(uops=tape.total_uops, l2_misses=tape.total_misses).upm

    gear = cluster.gears[gear_index]
    scale = cpu_model.dynamic_scale(gear)
    leak = cpu_model.leakage_power(gear)
    # Scalar prefixes mirror CPUPowerModel's left-associated products
    # so the vectorized power matches the engine's floats exactly.
    k_active = cpu.dynamic_power_full * scale * cpu.active_activity
    cpu_idle = cpu.dynamic_power_full * scale * cpu.idle_activity + leak
    pm_idle = power_model.base_power + cpu_idle
    saf = cpu.stall_activity_fraction

    dur_arrays = _segment_durations(tape, gear_index)
    durations = [d.tolist() for d in dur_arrays]

    finish, phases = _replay_gear(tape, durations)
    end_time = max(finish) if finish else 0.0

    energy = 0.0
    active_time = 0.0
    reducible_time = 0.0
    for rank in range(tape.nodes):
        d = dur_arrays[rank]
        w = tape.seg_weight[rank]
        if len(d):
            stall_frac = tape.seg_stall[rank] / d
            occupancy = (1.0 - stall_frac) + saf * stall_frac
            cpu_active = k_active * occupancy + leak
            intensity = np.minimum(
                1.0, (tape.seg_misses[rank] / d) / ref_bw
            )
            p_active = (
                power_model.base_power
                + cpu_active
                + power_model.memory_power_max * intensity
            )
            wd = w * d
            energy += float(np.sum(wd * (p_active - pm_idle)))
            rank_active = float(np.sum(wd))
            rank_reducible = float(np.sum(tape.seg_reducible[rank] * wd))
        else:
            rank_active = 0.0
            rank_reducible = 0.0
        if rank_active > active_time:
            active_time = rank_active
        if rank_reducible > reducible_time:
            reducible_time = rank_reducible
        # Idle baseline: the rank draws (CPU idle + disk idle) for
        # the whole run; disk-speed transitions split it into phases.
        t = 0.0
        disk_idle = tape.initial_disk_idle
        for boundary, new_idle in phases[rank]:
            energy += (pm_idle + disk_idle) * (boundary - t)
            t = boundary
            disk_idle = new_idle
        energy += (pm_idle + disk_idle) * (end_time - t)
        energy += tape.disk_excess[rank]

    measurement = RunMeasurement(
        workload=tape.workload_name,
        cluster=cluster.name,
        nodes=tape.nodes,
        gear=gear_index,
        time=end_time,
        energy=energy,
        active_time=active_time,
        idle_time=max(0.0, end_time - active_time),
        reducible_time=reducible_time,
        upm=upm,
    )
    if gear_index == tape.recording_gear:
        _self_check(tape, measurement)
    return measurement


@dataclass
class _GridRollup:
    """Per-gear-column measurement arrays from one vectorized rollup."""

    time: np.ndarray
    energy: np.ndarray
    active: np.ndarray
    reducible: np.ndarray
    upm: float


def _rollup_vector(
    tape: Tape,
    gear_indices: Sequence[int],
    dur_grid: list[np.ndarray],
    finish: list[np.ndarray],
    phases: list[list[tuple[np.ndarray, float]]],
) -> _GridRollup:
    """Energy/counter rollup for all gear columns in one pass.

    Mirrors :func:`_measure_gear`'s arithmetic elementwise over the gear
    axis: every per-gear scalar becomes a ``(gears,)`` vector built from
    the same left-associated scalar prefixes, and the per-segment matrix
    ops reduce along the segment axis exactly as the per-gear rows do.
    """
    cluster = tape.cluster
    node_spec = cluster.node
    cpu = node_spec.cpu
    power_model = node_spec.power_model()
    cpu_model = power_model.cpu_model
    ref_bw = node_spec.memory.reference_miss_bandwidth
    upm = CounterBank(uops=tape.total_uops, l2_misses=tape.total_misses).upm

    G = len(gear_indices)
    k_active = np.empty(G)
    leak = np.empty(G)
    pm_idle = np.empty(G)
    for col, gear_index in enumerate(gear_indices):
        gear = cluster.gears[gear_index]
        scale = cpu_model.dynamic_scale(gear)
        g_leak = cpu_model.leakage_power(gear)
        leak[col] = g_leak
        k_active[col] = cpu.dynamic_power_full * scale * cpu.active_activity
        cpu_idle = (
            cpu.dynamic_power_full * scale * cpu.idle_activity + g_leak
        )
        pm_idle[col] = power_model.base_power + cpu_idle
    saf = cpu.stall_activity_fraction

    end_time = finish[0]
    for rank in range(1, tape.nodes):
        end_time = np.maximum(end_time, finish[rank])

    energy = np.zeros(G)
    active_time = np.zeros(G)
    reducible_time = np.zeros(G)
    for rank in range(tape.nodes):
        D = dur_grid[rank]
        w = tape.seg_weight[rank]
        if D.shape[1]:
            stall_frac = tape.seg_stall[rank][None, :] / D
            occupancy = (1.0 - stall_frac) + saf * stall_frac
            cpu_active = k_active[:, None] * occupancy + leak[:, None]
            intensity = np.minimum(
                1.0, (tape.seg_misses[rank][None, :] / D) / ref_bw
            )
            p_active = (
                power_model.base_power
                + cpu_active
                + power_model.memory_power_max * intensity
            )
            wd = w[None, :] * D
            energy += np.sum(wd * (p_active - pm_idle[:, None]), axis=1)
            rank_active = np.sum(wd, axis=1)
            rank_reducible = np.sum(
                tape.seg_reducible[rank][None, :] * wd, axis=1
            )
            active_time = np.maximum(active_time, rank_active)
            reducible_time = np.maximum(reducible_time, rank_reducible)
        t = np.zeros(G)
        disk_idle = tape.initial_disk_idle
        for boundary, new_idle in phases[rank]:
            energy += (pm_idle + disk_idle) * (boundary - t)
            t = boundary
            disk_idle = new_idle
        energy += (pm_idle + disk_idle) * (end_time - t)
        energy += tape.disk_excess[rank]

    return _GridRollup(
        time=end_time,
        energy=energy,
        active=active_time,
        reducible=reducible_time,
        upm=upm,
    )


def _column_measurement(
    tape: Tape, gear_index: int, rollup: _GridRollup, col: int
) -> RunMeasurement:
    end_time = float(rollup.time[col])
    active = float(rollup.active[col])
    return RunMeasurement(
        workload=tape.workload_name,
        cluster=tape.cluster.name,
        nodes=tape.nodes,
        gear=gear_index,
        time=end_time,
        energy=float(rollup.energy[col]),
        active_time=active,
        idle_time=max(0.0, end_time - active),
        reducible_time=float(rollup.reducible[col]),
        upm=rollup.upm,
    )


def _replay_grid_scalar(
    tape: Tape, gear_indices: Sequence[int], stats: ReplayStats
) -> list[RunMeasurement]:
    stats.scalar_gears += len(gear_indices)
    return [_measure_gear(tape, g) for g in gear_indices]


def replay_grid(
    tape: Tape,
    gear_indices: Sequence[int],
    *,
    mode: str = "grid",
    stats: ReplayStats | None = None,
) -> list[RunMeasurement]:
    """Revalue the tape at every gear of a grid.

    ``mode="grid"`` (the default) compiles the tape once (cached on the
    tape) and walks the whole grid as gear-axis vectors; gear columns
    the send-order guard cannot certify are re-replayed by the scalar
    interpreter — exact, counted in ``stats``, never silent.
    ``mode="scalar"`` runs the PR 7 reference interpreter per gear.

    The recording gear is always revalued — appended to the grid when
    absent — and checked against the recording's own event-engine
    measurements at :data:`SELF_CHECK_RTOL`; a miss rejects the tape
    (:class:`BatchUnsupported`), so a defective replay can never
    silently ship wrong numbers for the *other* gears.  In grid mode
    the check runs against the *vectorized* column; if that column
    itself diverges, the whole grid falls back to the scalar path so
    vectorized numbers never ship unchecked.
    """
    if mode not in ("grid", "scalar"):
        raise ConfigurationError(
            f"unknown replay mode {mode!r} (expected 'grid' or 'scalar')"
        )
    if stats is None:
        stats = ReplayStats()
    if mode == "scalar":
        return _replay_grid_scalar(tape, gear_indices, stats)

    compiled = _compiled(tape)
    if not compiled.eligible:
        assert compiled.reason is not None
        stats.fallback_reasons.append(compiled.reason)
        return _replay_grid_scalar(tape, gear_indices, stats)

    extended = list(gear_indices)
    try:
        check_col = extended.index(tape.recording_gear)
    except ValueError:
        check_col = len(extended)
        extended.append(tape.recording_gear)
    dur_grid = _duration_grid(tape, extended)
    finish, phases, divergent = _vector_walk(tape, compiled, dur_grid)
    if divergent[check_col]:
        stats.fallback_reasons.append(
            "recording-gear column diverged from the recorded send order; "
            "scalar replay for the whole grid"
        )
        return _replay_grid_scalar(tape, gear_indices, stats)
    rollup = _rollup_vector(tape, extended, dur_grid, finish, phases)
    # Validate the vectorized path itself before any column ships.
    _self_check(
        tape, _column_measurement(tape, tape.recording_gear, rollup, check_col)
    )

    out: list[RunMeasurement] = []
    for col, gear_index in enumerate(gear_indices):
        if divergent[col]:
            stats.divergent_gears += 1
            stats.scalar_gears += 1
            out.append(_measure_gear(tape, gear_index))
        else:
            stats.vector_gears += 1
            out.append(_column_measurement(tape, gear_index, rollup, col))
    return out


def _self_check(tape: Tape, replay: RunMeasurement) -> None:
    """Reject the tape if replaying the recording gear disagrees with
    the recording's own event-engine measurements."""
    checks = (
        ("time", tape.recording_time, replay.time),
        ("energy", tape.recording_energy, replay.energy),
        ("active_time", tape.recording_active, replay.active_time),
        ("reducible_time", tape.recording_reducible, replay.reducible_time),
    )
    for name, expected, got in checks:
        denom = max(abs(expected), abs(got), 1e-300)
        if abs(expected - got) / denom > SELF_CHECK_RTOL:
            raise BatchUnsupported(
                f"self-check failed on {name}: recording {expected!r} vs "
                f"replay {got!r}"
            )


# ----------------------------------------------------------------------
# Tape serialization (persistent tape cache)

#: Scalar (JSON-native) tape fields, serialized verbatim.
_TAPE_SCALAR_FIELDS = (
    "workload_name",
    "nodes",
    "disk_excess",
    "recv_slots",
    "total_uops",
    "total_misses",
    "initial_disk_idle",
    "recording_time",
    "recording_energy",
    "recording_active",
    "recording_reducible",
    "recording_gear",
    "recorded_skips",
)

#: Per-rank float64 array fields, serialized as lists.
_TAPE_ARRAY_FIELDS = (
    "seg_uops",
    "seg_misses",
    "seg_stall",
    "seg_weight",
    "seg_reducible",
)


def tape_to_payload(tape: Tape) -> dict:
    """Serialize a tape to a JSON-safe dict (exact round-trip).

    Ints and bools are JSON-native and float64 survives JSON's
    repr/parse round-trip bit-for-bit, so a deserialized tape replays
    bitwise-identically to the original.  The cluster spec is *not*
    serialized: a tape cache key already pins the cluster fingerprint
    and the caller re-injects the live spec on load.
    """
    payload: dict[str, Any] = {
        "format": TAPE_FORMAT_VERSION,
        "ops": [[list(op) for op in rank_ops] for rank_ops in tape.ops],
    }
    for name in _TAPE_SCALAR_FIELDS:
        payload[name] = getattr(tape, name)
    for name in _TAPE_ARRAY_FIELDS:
        payload[name] = [arr.tolist() for arr in getattr(tape, name)]
    return payload


def tape_from_payload(cluster: ClusterSpec, payload: dict) -> Tape:
    """Rebuild a tape from :func:`tape_to_payload` output.

    Raises:
        ValueError: the payload's format version is not the current
            one.  Callers treat this as a cache miss and re-record —
            :data:`TAPE_FORMAT_VERSION` is part of every tape cache
            key, so this only fires on hand-fed payloads.
    """
    version = payload.get("format")
    if version != TAPE_FORMAT_VERSION:
        raise ValueError(
            f"tape format {version!r} != {TAPE_FORMAT_VERSION}"
        )
    kwargs: dict[str, Any] = {
        name: payload[name] for name in _TAPE_SCALAR_FIELDS
    }
    for name in _TAPE_ARRAY_FIELDS:
        kwargs[name] = [
            np.asarray(values, dtype=np.float64)
            for values in payload[name]
        ]
    ops = [[tuple(op) for op in rank_ops] for rank_ops in payload["ops"]]
    return Tape(cluster=cluster, ops=ops, **kwargs)


# ----------------------------------------------------------------------
# Public entry points


def batch_gear_grid(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gears: Sequence[int] | None = None,
    fast_forward: "FastForwardConfig | None" = None,
    replay_mode: str = "grid",
    stats: ReplayStats | None = None,
    tape: Tape | None = None,
) -> list[RunMeasurement]:
    """Measure a workload at every gear of a grid from one recording.

    The drop-in batch twin of running
    :func:`repro.core.run.run_workload` once per gear: one recording at
    the grid's first gear, then one vectorized replay of the whole
    grid.  Results agree with the event engine to ~1e-9 relative
    (exactly the fast-forward tolerance class).

    A pre-recorded ``tape`` (e.g. from the persistent tape cache)
    skips the recording; it must come from the same (cluster, workload,
    nodes, fast-forward) configuration — the tape cache key pins this.

    Raises:
        BatchUnsupported: the workload's structure cannot be certified
            gear-invariant; run the points on the event engine instead.
    """
    gear_indices = (
        list(gears) if gears is not None else list(cluster.gears.indices)
    )
    workload.validate_nodes(nodes)
    for g in gear_indices:
        cluster.validate_run(nodes, g)
    if tape is None:
        tape = record_tape(
            cluster,
            workload,
            nodes=nodes,
            gear=gear_indices[0],
            fast_forward=fast_forward,
        )
    elif tape.workload_name != workload.name or tape.nodes != nodes:
        raise ConfigurationError(
            f"tape records {tape.workload_name!r} on {tape.nodes} node(s), "
            f"not {workload.name!r} on {nodes}"
        )
    return replay_grid(tape, gear_indices, mode=replay_mode, stats=stats)


def batch_gear_sweep(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gears: Sequence[int] | None = None,
    fast_forward: "FastForwardConfig | None" = None,
    replay_mode: str = "grid",
    stats: ReplayStats | None = None,
    tape: Tape | None = None,
) -> EnergyTimeCurve:
    """One energy-time curve from one recording (batch twin of
    :func:`repro.core.run.gear_sweep`)."""
    measurements = batch_gear_grid(
        cluster,
        workload,
        nodes=nodes,
        gears=gears,
        fast_forward=fast_forward,
        replay_mode=replay_mode,
        stats=stats,
        tape=tape,
    )
    return EnergyTimeCurve(
        workload=workload.name,
        nodes=nodes,
        points=tuple(
            CurvePoint(gear=m.gear, time=m.time, energy=m.energy)
            for m in measurements
        ),
    )
