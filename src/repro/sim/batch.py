"""Gear-invariant record/replay batch backend: one recording, whole grid.

Every point of a gear sweep re-executes a near-identical discrete-event
stream: the *structure* of an MPI run — which compute blocks run, who
sends what to whom, where the program blocks — does not depend on the
energy gear, only the *timings* and *power levels* do.  The fast-forward
layer (:mod:`repro.mpi.fastforward`) already proves this structural
invariance in steady state via per-iteration signatures; COUNTDOWN
(Cesarini et al.) and Medhat et al.'s power redistribution rest on the
same separation at runtime.

This module exploits it across a whole sweep:

1. **Record.**  One run at a reference gear (the first gear of the
   grid) executes under the ordinary event engine with a transparent
   per-rank tape recorder wrapped around the program generators.  The
   tape holds the gear-invariant segment stream: compute blocks with
   their operation counts, communication edges with payload sizes and
   tags, waits with their handle references, disk bursts, disk-speed
   transitions, and iteration marks (with the fast-forward jumps the
   recording itself took).  The fast-forward signature machinery runs
   during the recording — with the task's own config when set, else in
   an observe-only mode that never jumps — and any signature deviation
   disqualifies the tape.

2. **Certify.**  A tape is replayable only if its structure is provably
   gear-invariant.  Program logic can depend on the gear only through
   :class:`~repro.mpi.requests.Now` (timings leak into control flow) or
   :class:`~repro.mpi.requests.SetGear` (adaptive policies), so either
   request fails certification; everything else resumes with
   gear-invariant values (payloads, handles, skip counts), which makes
   the whole request stream gear-invariant by induction.  Recorded
   fast-forward jumps additionally require consistent reducible-walk
   state at the jump window's boundaries, and a disk-speed change
   inside a replicated window is rejected.

3. **Replay.**  Per-segment durations are revalued for *all* gears in
   one NumPy pass — ``t(f) = uops/(issue_rate · f) + misses · latency``
   elementwise over ``(segments,)`` arrays, bitwise-identical to the
   engine's scalar arithmetic — and a lightweight per-gear interpreter
   re-runs only the *interactions*: message matching (same indexed
   FIFO/wildcard algorithm as :class:`~repro.mpi.world.World`), the
   stateful network server pool (contention re-forms per gear), blocking
   waits, and recorded macro-step jumps.  No generators resume, no trace
   rows or meter intervals are written.

4. **Roll up.**  Energy decomposes exactly: each rank draws its idle
   power for the whole run plus a busy *excess* for compute and disk
   segments, so ``E(g) = Σ_phases P_idle(g)·Δt + Σ_seg w·(P_seg(g) −
   P_idle(g))·d_seg(g) + disk-excess`` with the per-segment excess
   vectorized over the grid.  Window weights ``w`` replicate skipped
   cycles exactly as the event path's meter/trace replication does.

Any disqualification raises :class:`BatchUnsupported`; callers fall back
to the event engine point-by-point, which is bitwise-exact by
definition.  A built-in self-check replays the recording gear and
compares against the recording's own measurements at ``SELF_CHECK_RTOL``
before any other gear is trusted.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count
from typing import Any, Sequence

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.cluster.counters import CounterBank
from repro.cluster.disk import DiskModel
from repro.core.curves import CurvePoint, EnergyTimeCurve
from repro.core.run import RunMeasurement
from repro.mpi.fastforward import FastForwardConfig
from repro.mpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    DiskIO,
    Elapse,
    Irecv,
    Isend,
    IterationMark,
    Now,
    SetDiskSpeed,
    SetGear,
    TraceMark,
    Wait,
)
from repro.mpi.tracing import BLOCKING_OPS
from repro.mpi.world import World, WorldResult
from repro.workloads.base import Workload

#: Relative tolerance of the recording-gear self-check: the replay of the
#: reference gear must reproduce the recording's own measurements this
#: closely or the whole tape is rejected.
SELF_CHECK_RTOL = 1e-9

#: A fast-forward config that observes signatures but can never jump —
#: used to certify recordings of tasks that carry no config of their own.
#: ``min_jump`` above any possible iteration count means marks always
#: resume with 0, so the recorded timeline is bitwise what a plain
#: (no fast-forward) event run produces.
_OBSERVE_ONLY = FastForwardConfig(min_jump=1_000_000_000)

# Tape opcodes (first element of every op tuple).
_OP_COMPUTE = 0
_OP_SEND = 1
_OP_RECV = 2
_OP_WAIT = 3
_OP_ELAPSE = 4
_OP_DISK = 5
_OP_DSPEED = 6
_OP_MARK = 7


class BatchUnsupported(Exception):
    """The recorded run cannot be revalued across gears.

    Raised when certification fails (a ``Now`` or ``SetGear`` request,
    a signature deviation during the recording, inconsistent jump-window
    state) or when the replay self-check misses.  Callers fall back to
    the exact event engine, which handles every program.
    """


@dataclass
class Tape:
    """One certified recording, ready to revalue across a gear grid."""

    cluster: ClusterSpec
    workload_name: str
    nodes: int
    #: Per-rank flat op stream (tuples, opcode first).
    ops: list[list[tuple]]
    #: Per-rank compute-segment parameter arrays (float64).
    seg_uops: list[np.ndarray]
    seg_misses: list[np.ndarray]
    seg_stall: list[np.ndarray]
    #: Per-segment replication weight (1 + copies for jump windows).
    seg_weight: list[np.ndarray]
    #: Per-segment reducible-work membership (1.0 in, 0.0 out).
    seg_reducible: list[np.ndarray]
    #: Per-rank gear-independent disk busy-excess energy, joules.
    disk_excess: list[float]
    #: Per-rank number of receive slots.
    recv_slots: list[int]
    #: Weighted hardware-counter totals over all ranks.
    total_uops: float
    total_misses: float
    #: Disk idle power at the initial spindle speed (0.0 without a disk).
    initial_disk_idle: float
    #: The recording's own event-engine measurements, folded to scalars
    #: at record time: the self-check compares four floats per replay
    #: instead of re-walking the recording's traces (``active_time`` and
    #: ``reducible_time`` are O(events) properties).
    recording_time: float
    recording_energy: float
    recording_active: float
    recording_reducible: float
    recording_gear: int
    #: Iterations the recording's fast-forward macro-stepped past.
    recorded_skips: int


# ----------------------------------------------------------------------
# Recording


def _recording_program(program, tapes: list[list[tuple[Any, Any]]]):
    """Wrap a program factory so every (request, resume value) pair of
    every rank lands on its tape.  The wrapper is transparent: requests
    and values pass through unchanged, so the recording run is bitwise
    the run the event engine would execute without it."""

    def factory(comm):
        entries = tapes[comm.rank]
        gen = program(comm)
        value = None
        while True:
            try:
                request = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = yield request
            entries.append((request, value))

    return factory


def record_tape(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gear: int,
    fast_forward: "FastForwardConfig | None" = None,
) -> Tape:
    """Execute one recording run and build a certified tape.

    Raises:
        BatchUnsupported: the program's structure cannot be certified
            gear-invariant (see the class docstring for the rules).
    """
    workload.validate_nodes(nodes)
    cluster.validate_run(nodes, gear)
    entries: list[list[tuple[Any, Any]]] = [[] for _ in range(nodes)]
    config = fast_forward if fast_forward is not None else _OBSERVE_ONLY
    world = World(
        cluster,
        _recording_program(workload.program, entries),
        nodes=nodes,
        gear=gear,
        fast_forward=config,
    )
    recording = world.run()
    ff = world._ff
    assert ff is not None
    if ff.stats.deviations:
        raise BatchUnsupported(
            f"{ff.stats.deviations} signature deviation(s) during recording: "
            "the event structure is not iteration-stable"
        )
    jumps = {(rank, idx): (jump, period) for rank, idx, jump, period in ff.jump_log}
    return _build_tape(cluster, workload, nodes, gear, entries, jumps, recording)


def _build_tape(
    cluster: ClusterSpec,
    workload: Workload,
    nodes: int,
    gear: int,
    entries: list[list[tuple[Any, Any]]],
    jumps: dict[tuple[int, int], tuple[int, int]],
    recording: WorldResult,
) -> Tape:
    """Convert raw (request, value) streams into the certified tape."""
    node_spec = cluster.node
    issue_rate = node_spec.cpu.issue_rate
    default_latency = node_spec.memory.effective_miss_latency
    disk_model = DiskModel(node_spec.disk) if node_spec.disk else None
    initial_speed = node_spec.disk.fastest if node_spec.disk else None
    initial_disk_idle = (
        disk_model.idle_power(initial_speed) if disk_model is not None else 0.0
    )

    ops_by_rank: list[list[tuple]] = []
    seg_uops: list[np.ndarray] = []
    seg_misses: list[np.ndarray] = []
    seg_stall: list[np.ndarray] = []
    seg_weight: list[np.ndarray] = []
    seg_reducible: list[np.ndarray] = []
    disk_excess: list[float] = []
    recv_slots: list[int] = []
    total_uops = 0.0
    total_misses = 0.0
    recorded_skips = 0

    for rank in range(nodes):
        ops: list[tuple] = []
        uops: list[float] = []
        misses: list[float] = []
        stall: list[float] = []
        handle_map: dict[int, tuple[str, int]] = {}  # uid -> (kind, slot)
        slots = 0
        speed = initial_speed
        # Disk ops as (op position, excess joules) so window weights can
        # be applied after all jumps are known.
        disk_ops: list[tuple[int, float]] = []
        # Reducible-work walk state (structural twin of
        # RankTrace.reducible_time over top-level records in tape order).
        depth = 0
        seen_send = False
        pending: list[int] = []
        reducible: set[int] = set()
        # Mark bookkeeping: request index -> (op position, walk state).
        mark_info: dict[int, tuple[int, bool, bool, int]] = {}
        rank_jumps: list[tuple[int, int, int]] = []  # (mark idx, jump, period)
        # Positions of disk-speed *changes* (must stay outside windows).
        speed_changes: list[int] = []

        for request, value in entries[rank]:
            cls = request.__class__
            if cls is Compute:
                block = request.block
                seg = len(uops)
                latency = (
                    block.miss_latency
                    if block.miss_latency is not None
                    else default_latency
                )
                uops.append(block.uops)
                misses.append(block.l2_misses)
                stall.append(block.l2_misses * latency)
                ops.append((_OP_COMPUTE, seg))
                if depth == 0 and seen_send:
                    pending.append(seg)
            elif cls is Isend:
                ops.append(
                    (
                        _OP_SEND,
                        request.dest,
                        request.tag,
                        request.nbytes,
                        request.dest == rank,
                    )
                )
                handle_map[value.uid] = ("send", -1)
                if depth == 0:
                    seen_send = True
                    pending = []
            elif cls is Irecv:
                ops.append((_OP_RECV, request.source, request.tag, slots))
                handle_map[value.uid] = ("recv", slots)
                slots += 1
            elif cls is Wait:
                kind, slot = handle_map[request.handle.uid]
                if kind == "recv":
                    # Waits on sends never block (eager sends complete at
                    # inject, before the program can reach the wait) and
                    # are not blocking points for the reducible walk, so
                    # they are dropped from the tape entirely.
                    ops.append((_OP_WAIT, slot))
                    if depth == 0:
                        reducible.update(pending)
                        pending = []
                        seen_send = False
            elif cls is TraceMark:
                if request.phase == "begin":
                    depth += 1
                else:
                    depth -= 1
                    if depth == 0 and request.op in BLOCKING_OPS:
                        reducible.update(pending)
                        pending = []
                        seen_send = False
            elif cls is IterationMark:
                if depth != 0:
                    raise BatchUnsupported(
                        f"rank {rank}: iteration mark inside a collective"
                    )
                mark_info[request.index] = (
                    len(ops),
                    seen_send,
                    not pending,
                    request.index,
                )
                skipped = int(value or 0)
                if skipped:
                    jump = jumps.get((rank, request.index))
                    if jump is None or jump[0] != skipped:
                        raise BatchUnsupported(
                            f"rank {rank}: unaccounted macro-step at mark "
                            f"{request.index}"
                        )
                    period = jump[1]
                    ops.append((_OP_MARK, skipped, period))
                    rank_jumps.append((request.index, skipped, period))
                    recorded_skips += skipped
                else:
                    ops.append((_OP_MARK, 0, 0))
            elif cls is Elapse:
                ops.append((_OP_ELAPSE, request.seconds))
            elif cls is DiskIO:
                assert disk_model is not None and speed is not None
                duration = disk_model.io_time(request.nbytes, speed)
                ops.append((_OP_DISK, duration))
                excess = duration * (
                    disk_model.io_power(speed) - disk_model.idle_power(speed)
                )
                disk_ops.append((len(ops) - 1, excess))
            elif cls is SetDiskSpeed:
                assert disk_model is not None
                target = disk_model.spec[request.speed_index]
                if speed is not None and target.index == speed.index:
                    continue  # no-op in the engine: zero time, no record
                speed = target
                speed_changes.append(len(ops))
                ops.append(
                    (
                        _OP_DSPEED,
                        disk_model.spec.transition_time,
                        disk_model.idle_power(target),
                    )
                )
            elif cls is Now or cls is SetGear:
                raise BatchUnsupported(
                    f"rank {rank}: {cls.__name__} request — structure may "
                    "depend on the gear"
                )
            else:
                raise BatchUnsupported(
                    f"rank {rank}: unsupported request {cls.__name__}"
                )

        # Replication weights: ops inside a jump's window (the `period`
        # marks preceding the jump mark) repeat 1 + copies times, exactly
        # as the event path's meter/trace/counter replication does.
        nsegs = len(uops)
        weight = np.ones(nsegs, dtype=np.float64)
        disk_w = {pos: 1.0 for pos, _ in disk_ops}
        for mark_idx, jump, period in rank_jumps:
            end = mark_info.get(mark_idx)
            start = mark_info.get(mark_idx - period)
            if end is None or start is None:
                raise BatchUnsupported(
                    f"rank {rank}: jump window at mark {mark_idx} has no "
                    f"recorded start (period {period})"
                )
            start_pos, start_send, start_clean, _ = start
            end_pos, end_send, end_clean, _ = end
            if not (start_clean and end_clean and start_send == end_send):
                raise BatchUnsupported(
                    f"rank {rank}: reducible-walk state differs across the "
                    f"jump window at mark {mark_idx}"
                )
            for pos in speed_changes:
                if start_pos <= pos < end_pos:
                    raise BatchUnsupported(
                        f"rank {rank}: disk-speed change inside a "
                        "replicated window"
                    )
            copies = jump // period
            for pos in range(start_pos, end_pos):
                op = ops[pos]
                code = op[0]
                if code == _OP_COMPUTE:
                    weight[op[1]] += copies
                elif code == _OP_DISK:
                    disk_w[pos] += copies

        uops_arr = np.asarray(uops, dtype=np.float64)
        misses_arr = np.asarray(misses, dtype=np.float64)
        red = np.zeros(nsegs, dtype=np.float64)
        if reducible:
            red[sorted(reducible)] = 1.0

        ops_by_rank.append(ops)
        seg_uops.append(uops_arr)
        seg_misses.append(misses_arr)
        seg_stall.append(np.asarray(stall, dtype=np.float64))
        seg_weight.append(weight)
        seg_reducible.append(red)
        disk_excess.append(
            math.fsum(disk_w[pos] * excess for pos, excess in disk_ops)
        )
        recv_slots.append(slots)
        total_uops += float(np.sum(weight * uops_arr))
        total_misses += float(np.sum(weight * misses_arr))

    return Tape(
        cluster=cluster,
        workload_name=workload.name,
        nodes=nodes,
        ops=ops_by_rank,
        seg_uops=seg_uops,
        seg_misses=seg_misses,
        seg_stall=seg_stall,
        seg_weight=seg_weight,
        seg_reducible=seg_reducible,
        disk_excess=disk_excess,
        recv_slots=recv_slots,
        total_uops=total_uops,
        total_misses=total_misses,
        initial_disk_idle=initial_disk_idle,
        recording_time=recording.elapsed,
        recording_energy=recording.total_energy,
        recording_active=recording.active_time,
        recording_reducible=recording.reducible_time(),
        recording_gear=gear,
        recorded_skips=recorded_skips,
    )


# ----------------------------------------------------------------------
# Replay


def _replay_gear(
    tape: Tape, durations: list[list[float]]
) -> tuple[list[float], list[list[tuple[float, float]]]]:
    """Re-run the tape's interactions at one gear.

    Returns per-rank finish times and per-rank disk-speed phase
    boundaries ``(time, new disk idle watts)``.  The interpreter mirrors
    :class:`~repro.mpi.world.World` exactly — same matching algorithm,
    same network server pool, same FIFO tie-breaking — so the timeline
    is the event engine's, without generators, traces, or meters.
    """
    nodes = tape.nodes
    network = tape.cluster.network_model()
    schedule_transfer = network.schedule_transfer
    overhead = network.endpoint_overhead()
    ops_by_rank = tape.ops
    nops = [len(ops) for ops in ops_by_rank]
    pos = [0] * nodes
    finish: list[float | None] = [None] * nodes
    heap: list[tuple[float, int, int]] = []
    seq = count()
    msg_seq = count(1)
    recv_uid = count()
    recv_post: list[list[float]] = [[0.0] * n for n in tape.recv_slots]
    recv_done: list[list[float | None]] = [[None] * n for n in tape.recv_slots]
    recv_waiting: list[list[bool]] = [[False] * n for n in tape.recv_slots]
    posted: list[dict[tuple[int, int], deque]] = [{} for _ in range(nodes)]
    unexpected: list[dict[tuple[int, int], deque]] = [{} for _ in range(nodes)]
    phases: list[list[tuple[float, float]]] = [[] for _ in range(nodes)]
    marks: list[list[float]] = [[] for _ in range(nodes)]

    def complete(rank: int, slot: int, arrival: float, now: float) -> None:
        # Mirrors World._complete_recv: ready + per-endpoint overhead.
        ready = max(recv_post[rank][slot], arrival, now)
        done = ready + overhead
        recv_done[rank][slot] = done
        if recv_waiting[rank][slot]:
            recv_waiting[rank][slot] = False
            heappush(heap, (done, next(seq), rank))

    def route(dest: int, source: int, tag: int, arrival: float, now: float) -> None:
        # Mirrors World._route (indexed FIFO, earliest-posted wins).
        pd = posted[dest]
        if pd:
            best_key = None
            best_uid = -1
            for key in (
                (source, tag),
                (ANY_SOURCE, tag),
                (source, ANY_TAG),
                (ANY_SOURCE, ANY_TAG),
            ):
                queue = pd.get(key)
                if queue:
                    uid = queue[0][0]
                    if best_key is None or uid < best_uid:
                        best_key, best_uid = key, uid
            if best_key is not None:
                queue = pd[best_key]
                _, slot = queue.popleft()
                if not queue:
                    del pd[best_key]
                complete(dest, slot, arrival, now)
                return
        ud = unexpected[dest]
        key = (source, tag)
        queue = ud.get(key)
        if queue is None:
            ud[key] = deque(((arrival, next(msg_seq)),))
        else:
            queue.append((arrival, next(msg_seq)))

    def match_unexpected(rank: int, source: int, tag: int):
        # Mirrors World._match_unexpected (earliest-sent wins).
        ud = unexpected[rank]
        if not ud:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            queue = ud.get((source, tag))
            if not queue:
                return None
            message = queue.popleft()
            if not queue:
                del ud[(source, tag)]
            return message
        best_key = None
        best_seq = -1
        for key, queue in ud.items():
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            mseq = queue[0][1]
            if best_key is None or mseq < best_seq:
                best_key, best_seq = key, mseq
        if best_key is None:
            return None
        queue = ud[best_key]
        message = queue.popleft()
        if not queue:
            del ud[best_key]
        return message

    def advance(rank: int, now: float) -> None:
        ops = ops_by_rank[rank]
        n = nops[rank]
        p = pos[rank]
        durs = durations[rank]
        while True:
            if p == n:
                pos[rank] = p
                finish[rank] = now
                return
            op = ops[p]
            p += 1
            code = op[0]
            if code == _OP_COMPUTE:
                d = durs[op[1]]
                if d != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + d, next(seq), rank))
                    return
            elif code == _OP_SEND:
                _, dest, tag, nbytes, same = op
                inject = now + overhead
                arrival = schedule_transfer(inject, nbytes, same_node=same)
                route(dest, rank, tag, arrival, now)
                if overhead != 0.0:
                    pos[rank] = p
                    heappush(heap, (inject, next(seq), rank))
                    return
            elif code == _OP_RECV:
                _, source, tag, slot = op
                recv_post[rank][slot] = now
                message = match_unexpected(rank, source, tag)
                if message is not None:
                    complete(rank, slot, message[0], now)
                else:
                    key = (source, tag)
                    queue = posted[rank].get(key)
                    entry = (next(recv_uid), slot)
                    if queue is None:
                        posted[rank][key] = deque((entry,))
                    else:
                        queue.append(entry)
            elif code == _OP_WAIT:
                done = recv_done[rank][op[1]]
                if done is not None:
                    if done <= now:
                        continue
                    pos[rank] = p
                    heappush(heap, (done, next(seq), rank))
                    return
                recv_waiting[rank][op[1]] = True
                pos[rank] = p
                return
            elif code == _OP_MARK:
                rank_marks = marks[rank]
                rank_marks.append(now)
                skipped = op[1]
                if skipped:
                    period = op[2]
                    copies = skipped // period
                    cycle = now - rank_marks[-1 - period]
                    pos[rank] = p
                    heappush(heap, (now + copies * cycle, next(seq), rank))
                    return
            elif code == _OP_ELAPSE:
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return
            elif code == _OP_DISK:
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return
            else:  # _OP_DSPEED
                phases[rank].append((now, op[2]))
                if op[1] != 0.0:
                    pos[rank] = p
                    heappush(heap, (now + op[1], next(seq), rank))
                    return

    for rank in range(nodes):
        advance(rank, 0.0)
    while heap:
        now, _, rank = heappop(heap)
        advance(rank, now)
    if any(f is None for f in finish):
        stuck = [r for r, f in enumerate(finish) if f is None]
        raise BatchUnsupported(f"replay stalled on ranks {stuck}")
    return finish, phases  # type: ignore[return-value]


def replay_grid(
    tape: Tape, gear_indices: Sequence[int]
) -> list[RunMeasurement]:
    """Revalue the tape at every gear of a grid.

    The recording gear's replay is checked against the recording's own
    event-engine measurements at :data:`SELF_CHECK_RTOL`; a miss rejects
    the tape (:class:`BatchUnsupported`), so a defective replay can never
    silently ship wrong numbers for the *other* gears.
    """
    cluster = tape.cluster
    node_spec = cluster.node
    cpu = node_spec.cpu
    power_model = node_spec.power_model()
    cpu_model = power_model.cpu_model
    ref_bw = node_spec.memory.reference_miss_bandwidth
    upm = CounterBank(uops=tape.total_uops, l2_misses=tape.total_misses).upm

    out: list[RunMeasurement] = []
    for gear_index in gear_indices:
        gear = cluster.gears[gear_index]
        scale = cpu_model.dynamic_scale(gear)
        leak = cpu_model.leakage_power(gear)
        # Scalar prefixes mirror CPUPowerModel's left-associated products
        # so the vectorized power matches the engine's floats exactly.
        k_active = cpu.dynamic_power_full * scale * cpu.active_activity
        cpu_idle = cpu.dynamic_power_full * scale * cpu.idle_activity + leak
        pm_idle = power_model.base_power + cpu_idle
        denom = cpu.issue_rate * gear.frequency_hz
        saf = cpu.stall_activity_fraction

        durations: list[list[float]] = []
        dur_arrays: list[np.ndarray] = []
        for rank in range(tape.nodes):
            d = tape.seg_uops[rank] / denom + tape.seg_stall[rank]
            dur_arrays.append(d)
            durations.append(d.tolist())

        finish, phases = _replay_gear(tape, durations)
        end_time = max(finish) if finish else 0.0

        energy = 0.0
        active_time = 0.0
        reducible_time = 0.0
        for rank in range(tape.nodes):
            d = dur_arrays[rank]
            w = tape.seg_weight[rank]
            if len(d):
                stall_frac = tape.seg_stall[rank] / d
                occupancy = (1.0 - stall_frac) + saf * stall_frac
                cpu_active = k_active * occupancy + leak
                intensity = np.minimum(
                    1.0, (tape.seg_misses[rank] / d) / ref_bw
                )
                p_active = (
                    power_model.base_power
                    + cpu_active
                    + power_model.memory_power_max * intensity
                )
                wd = w * d
                energy += float(np.sum(wd * (p_active - pm_idle)))
                rank_active = float(np.sum(wd))
                rank_reducible = float(np.sum(tape.seg_reducible[rank] * wd))
            else:
                rank_active = 0.0
                rank_reducible = 0.0
            if rank_active > active_time:
                active_time = rank_active
            if rank_reducible > reducible_time:
                reducible_time = rank_reducible
            # Idle baseline: the rank draws (CPU idle + disk idle) for
            # the whole run; disk-speed transitions split it into phases.
            t = 0.0
            disk_idle = tape.initial_disk_idle
            for boundary, new_idle in phases[rank]:
                energy += (pm_idle + disk_idle) * (boundary - t)
                t = boundary
                disk_idle = new_idle
            energy += (pm_idle + disk_idle) * (end_time - t)
            energy += tape.disk_excess[rank]

        measurement = RunMeasurement(
            workload=tape.workload_name,
            cluster=cluster.name,
            nodes=tape.nodes,
            gear=gear_index,
            time=end_time,
            energy=energy,
            active_time=active_time,
            idle_time=max(0.0, end_time - active_time),
            reducible_time=reducible_time,
            upm=upm,
        )
        if gear_index == tape.recording_gear:
            _self_check(tape, measurement)
        out.append(measurement)
    return out


def _self_check(tape: Tape, replay: RunMeasurement) -> None:
    """Reject the tape if replaying the recording gear disagrees with
    the recording's own event-engine measurements."""
    checks = (
        ("time", tape.recording_time, replay.time),
        ("energy", tape.recording_energy, replay.energy),
        ("active_time", tape.recording_active, replay.active_time),
        ("reducible_time", tape.recording_reducible, replay.reducible_time),
    )
    for name, expected, got in checks:
        denom = max(abs(expected), abs(got), 1e-300)
        if abs(expected - got) / denom > SELF_CHECK_RTOL:
            raise BatchUnsupported(
                f"self-check failed on {name}: recording {expected!r} vs "
                f"replay {got!r}"
            )


# ----------------------------------------------------------------------
# Public entry points


def batch_gear_grid(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gears: Sequence[int] | None = None,
    fast_forward: "FastForwardConfig | None" = None,
) -> list[RunMeasurement]:
    """Measure a workload at every gear of a grid from one recording.

    The drop-in batch twin of running
    :func:`repro.core.run.run_workload` once per gear: one recording at
    the grid's first gear, then a vectorized replay per gear.  Results
    agree with the event engine to ~1e-9 relative (exactly the
    fast-forward tolerance class).

    Raises:
        BatchUnsupported: the workload's structure cannot be certified
            gear-invariant; run the points on the event engine instead.
    """
    gear_indices = (
        list(gears) if gears is not None else list(cluster.gears.indices)
    )
    workload.validate_nodes(nodes)
    for g in gear_indices:
        cluster.validate_run(nodes, g)
    tape = record_tape(
        cluster,
        workload,
        nodes=nodes,
        gear=gear_indices[0],
        fast_forward=fast_forward,
    )
    return replay_grid(tape, gear_indices)


def batch_gear_sweep(
    cluster: ClusterSpec,
    workload: Workload,
    *,
    nodes: int,
    gears: Sequence[int] | None = None,
    fast_forward: "FastForwardConfig | None" = None,
) -> EnergyTimeCurve:
    """One energy-time curve from one recording (batch twin of
    :func:`repro.core.run.gear_sweep`)."""
    measurements = batch_gear_grid(
        cluster,
        workload,
        nodes=nodes,
        gears=gears,
        fast_forward=fast_forward,
    )
    return EnergyTimeCurve(
        workload=workload.name,
        nodes=nodes,
        points=tuple(
            CurvePoint(gear=m.gear, time=m.time, energy=m.energy)
            for m in measurements
        ),
    )
