"""The event loop: a simulated clock over a binary heap of callbacks.

Determinism guarantees:

- events at equal times fire in scheduling (FIFO) order, via a
  monotonically increasing sequence number in the heap key;
- the engine itself never consults wall-clock time or global randomness.

Observability: pass a :class:`repro.obs.registry.MetricsRegistry` as
``metrics`` and the engine publishes ``sim.scheduled`` / ``sim.events``
counters and a ``sim.clock_s`` gauge.  The default (``None``) costs one
attribute check per event and changes no behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled callback.

    Ordering is by ``(time, seq)``; the callback is excluded from
    comparisons.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """A discrete-event simulator with a float-seconds clock."""

    def __init__(self, *, metrics: "MetricsRegistry | None" = None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._metrics = metrics

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, at: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``at``.

        Raises:
            SimulationError: scheduling into the past.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule at {at}: clock is already at {self._now}"
            )
        event = Event(at, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        if self._metrics is not None:
            self._metrics.inc("sim.scheduled")
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a non-negative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        if self._metrics is not None:
            self._metrics.inc("sim.events")
            self._metrics.set_gauge("sim.clock_s", self._now)
        event.callback()
        return True

    def run(self, *, max_events: int | None = None) -> None:
        """Run until the event queue drains.

        Args:
            max_events: optional safety bound; exceeding it raises
                :class:`SimulationError` (runaway-simulation guard).
        """
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events without draining"
                )
