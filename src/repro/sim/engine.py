"""The event loop: a simulated clock over a binary heap of callbacks.

Determinism guarantees:

- events at equal times fire in scheduling (FIFO) order, via a
  monotonically increasing sequence number in the heap key;
- the engine itself never consults wall-clock time or global randomness.

Performance: the heap holds plain ``(time, seq, callback)`` tuples
(:class:`Event` is a ``NamedTuple``, so the scheduled object *is* the
heap entry) and :meth:`run` drains the queue in a single fused loop
with the metrics check hoisted out of the per-event path.  Comparisons
during sifting are C-level tuple comparisons that never reach the
callback element because ``seq`` is unique.

Observability: pass a :class:`repro.obs.registry.MetricsRegistry` as
``metrics`` and the engine publishes ``sim.scheduled`` / ``sim.events``
counters and a ``sim.clock_s`` gauge.  The default (``None``) selects
the uninstrumented drain loop and changes no behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, NamedTuple

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.registry import MetricsRegistry


class Event(NamedTuple):
    """One scheduled callback.

    A named tuple ordered by ``(time, seq)``; ``seq`` is unique per
    simulator, so comparisons never fall through to the callback.
    """

    time: float
    seq: int
    callback: Callable[[], None]


class Simulator:
    """A discrete-event simulator with a float-seconds clock."""

    def __init__(self, *, metrics: "MetricsRegistry | None" = None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._metrics = metrics

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, at: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``at``.

        Raises:
            SimulationError: scheduling into the past.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule at {at}: clock is already at {self._now}"
            )
        event = Event(at, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        if self._metrics is not None:
            self._metrics.inc("sim.scheduled")
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a non-negative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback)

    def jump_to(self, at: float) -> None:
        """Advance the clock to ``at`` without executing any events.

        The macro-stepping (fast-forward) layer uses this to skip over
        analytically-extrapolated steady-state regions.  Jumping is pure
        clock motion: no callbacks run, :attr:`processed` does not
        change, and any ``max_events`` budget of a surrounding
        :meth:`run` is unaffected.

        Raises:
            SimulationError: jumping backwards, or over a pending event
                (an event scheduled strictly before ``at`` would be
                executed at a time later than its own timestamp).
        """
        if at < self._now:
            raise SimulationError(
                f"cannot jump to {at}: clock is already at {self._now}"
            )
        if self._heap and self._heap[0].time < at:
            raise SimulationError(
                f"cannot jump to {at}: event pending at {self._heap[0].time}"
            )
        self._now = at
        if self._metrics is not None:
            self._metrics.set_gauge("sim.clock_s", at)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        if self._metrics is not None:
            self._metrics.inc("sim.events")
            self._metrics.set_gauge("sim.clock_s", self._now)
        callback()
        return True

    def run(self, *, max_events: int | None = None) -> None:
        """Run until the event queue drains.

        Args:
            max_events: optional safety bound; the guard raises
                :class:`SimulationError` as soon as ``max_events`` events
                have executed with the queue still non-empty (a run that
                drains in exactly ``max_events`` events succeeds).
        """
        heap = self._heap
        if max_events is not None and max_events < 1 and heap:
            raise SimulationError(
                f"simulation exceeded {max_events} events without draining"
            )
        if self._metrics is not None:
            self._run_instrumented(max_events)
            return
        pop = heapq.heappop
        executed = 0
        while heap:
            time, _seq, callback = pop(heap)
            self._now = time
            self._processed += 1
            callback()
            executed += 1
            if executed == max_events and heap:
                raise SimulationError(
                    f"simulation exceeded {max_events} events without draining"
                )

    def _run_instrumented(self, max_events: int | None) -> None:
        """The metrics-publishing drain loop (the slow path)."""
        heap = self._heap
        pop = heapq.heappop
        metrics = self._metrics
        assert metrics is not None
        executed = 0
        while heap:
            time, _seq, callback = pop(heap)
            self._now = time
            self._processed += 1
            metrics.inc("sim.events")
            metrics.set_gauge("sim.clock_s", time)
            callback()
            executed += 1
            if executed == max_events and heap:
                raise SimulationError(
                    f"simulation exceeded {max_events} events without draining"
                )
