"""Generator-coroutine rank processes.

A rank's program is a Python generator that yields *requests* (compute,
send, receive, ...) to its runtime and receives resume values back.  The
process wrapper tracks lifecycle state and normalises termination.
"""

from __future__ import annotations

import enum
from typing import Any, Generator

from repro.util.errors import SimulationError

#: The request/resume protocol type of a rank program.
RankProgram = Generator[Any, Any, Any]


class ProcessState(enum.Enum):
    """Lifecycle of a rank process."""

    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class _Stop:
    """Sentinel returned by :meth:`RankProcess.resume` on termination."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<process finished>"


STOP = _Stop()


class RankProcess:
    """Wraps one rank's generator with state tracking.

    Attributes:
        rank: the MPI rank this process plays.
        state: current :class:`ProcessState`.
        result: the generator's return value once DONE.
        blocked_on: human-readable description of the blocking request,
            for deadlock diagnostics.
    """

    def __init__(self, rank: int, program: RankProgram):
        if not hasattr(program, "send"):
            raise SimulationError(
                f"rank {rank} program must be a generator, got {type(program).__name__}"
            )
        self.rank = rank
        self._gen = program
        self.state = ProcessState.READY
        self.result: Any = None
        self.blocked_on: str | None = None

    def resume(self, value: Any = None) -> Any:
        """Advance the generator; return its next request or ``STOP``.

        The first resume must pass ``None`` (generator protocol).  On
        generator exceptions the process is marked FAILED and the
        exception propagates.
        """
        if self.state is ProcessState.DONE:
            raise SimulationError(f"rank {self.rank} resumed after completion")
        self.state = ProcessState.READY
        self.blocked_on = None
        try:
            return self._gen.send(value)
        except StopIteration as stop:
            self.state = ProcessState.DONE
            self.result = stop.value
            return STOP
        except Exception:
            self.state = ProcessState.FAILED
            raise

    def block(self, description: str) -> None:
        """Mark the process blocked (for diagnostics only)."""
        self.state = ProcessState.BLOCKED
        self.blocked_on = description

    @property
    def done(self) -> bool:
        """True once the generator has returned."""
        return self.state is ProcessState.DONE
