"""Deterministic discrete-event simulation engine.

The engine is MPI-agnostic: it provides a simulated clock, an event heap
with FIFO tie-breaking, and generator-coroutine processes.  The MPI
runtime in :mod:`repro.mpi` interprets the requests those processes yield.
"""

from repro.sim.engine import Simulator, Event
from repro.sim.process import RankProcess, ProcessState

__all__ = ["Simulator", "Event", "RankProcess", "ProcessState"]

# repro.sim.batch (the record/replay batch backend) is imported lazily by
# its users — it pulls in the cluster/mpi/core layers, which would make
# `import repro.sim` circular if re-exported here.
