"""ASCII scatter plots of energy-time curves.

A minimal plotting engine: a character canvas with linear axis scaling,
multi-series markers, connected points within a series, and a legend.
Like the paper's figures, the origin is *not* (0, 0) — the window is
fitted to the data so near-vertical energy drops stay visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.curves import CurveFamily, EnergyTimeCurve
from repro.util.errors import ConfigurationError

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


@dataclass
class AsciiPlot:
    """A character-canvas scatter plot.

    Attributes:
        width / height: canvas size in characters (plot area, excluding
            axis labels).
        title: optional heading.
        x_label / y_label: axis captions.
    """

    width: int = 64
    height: int = 20
    title: str | None = None
    x_label: str = "x"
    y_label: str = "y"
    _series: list[tuple[str, list[tuple[float, float]], str]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ConfigurationError(
                f"canvas must be at least 8x4, got {self.width}x{self.height}"
            )

    def add_series(
        self, name: str, points: Sequence[tuple[float, float]], marker: str | None = None
    ) -> None:
        """Add one named series of (x, y) points."""
        if not points:
            raise ConfigurationError(f"series {name!r} has no points")
        if marker is None:
            marker = MARKERS[len(self._series) % len(MARKERS)]
        if len(marker) != 1:
            raise ConfigurationError(f"marker must be one character, got {marker!r}")
        self._series.append((name, [(float(x), float(y)) for x, y in points], marker))

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for _, pts, _ in self._series for x, _ in pts]
        ys = [y for _, pts, _ in self._series for _, y in pts]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        # Pad degenerate ranges so scaling stays finite.
        if x_hi == x_lo:
            x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
        if y_hi == y_lo:
            y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
        # 5 % margins, like the paper's fitted windows.
        mx = 0.05 * (x_hi - x_lo)
        my = 0.05 * (y_hi - y_lo)
        return x_lo - mx, x_hi + mx, y_lo - my, y_hi + my

    def render(self) -> str:
        """Render the canvas with axes, ticks, and a legend."""
        if not self._series:
            raise ConfigurationError("nothing to plot: add a series first")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_cell(x: float, y: float) -> tuple[int, int]:
            cx = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
            cy = int((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
            return min(max(cx, 0), self.width - 1), min(max(cy, 0), self.height - 1)

        for _, points, marker in self._series:
            ordered = sorted(points)
            # Light connecting dots between consecutive points.
            for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
                steps = max(
                    abs(to_cell(x1, y1)[0] - to_cell(x0, y0)[0]),
                    abs(to_cell(x1, y1)[1] - to_cell(x0, y0)[1]),
                    1,
                )
                for step in range(1, steps):
                    t = step / steps
                    cx, cy = to_cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                    if grid[cy][cx] == " ":
                        grid[cy][cx] = "."
            for x, y in points:
                cx, cy = to_cell(x, y)
                grid[cy][cx] = marker

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(f"{self.y_label} (top {y_hi:.4g}, bottom {y_lo:.4g})")
        for row in reversed(range(self.height)):
            lines.append("|" + "".join(grid[row]))
        lines.append("+" + "-" * self.width)
        lines.append(
            f" {self.x_label}: {x_lo:.4g} .. {x_hi:.4g}"
        )
        legend = "  ".join(f"{marker}={name}" for name, _, marker in self._series)
        lines.append(f" legend: {legend}")
        return "\n".join(lines)


def plot_curve(curve: EnergyTimeCurve, **plot_kwargs) -> str:
    """Render one energy-time curve, gear numbers as markers."""
    plot = AsciiPlot(
        title=plot_kwargs.pop("title", f"{curve.workload}, {curve.nodes} node(s)"),
        x_label="time (s)",
        y_label="energy (J)",
        **plot_kwargs,
    )
    # One series per gear would be noise; plot the curve with its gears
    # as individual single-point series so markers read as gear digits.
    for point in curve.points:
        plot.add_series(
            f"gear {point.gear}", [(point.time, point.energy)], marker=str(point.gear)
        )
    return plot.render()


def plot_family(family: CurveFamily, **plot_kwargs) -> str:
    """Render a figure panel: one marker series per node count."""
    plot = AsciiPlot(
        title=plot_kwargs.pop("title", f"{family.workload}: energy vs time"),
        x_label="time (s)",
        y_label="energy (J)",
        **plot_kwargs,
    )
    for curve in family:
        plot.add_series(
            f"{curve.nodes} nodes",
            [(p.time, p.energy) for p in curve.points],
        )
    return plot.render()
