"""Per-rank execution timelines from simulation traces.

Turns a :class:`repro.mpi.world.WorldResult` into Gantt-style strips —
one row per rank, characters marking compute (``#``), MPI/blocked
(``-``), and post-finish idling (``.``) — the visual the paper's
active/idle decomposition describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.tracing import CATEGORY_COMPUTE
from repro.mpi.world import WorldResult
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Segment:
    """One homogeneous interval of a rank's life."""

    start: float
    end: float
    kind: str  # 'compute' | 'mpi' | 'done'

    @property
    def duration(self) -> float:
        """Seconds covered."""
        return self.end - self.start


def timeline_segments(result: WorldResult, rank: int) -> list[Segment]:
    """Reconstruct one rank's compute/mpi/done segments from its trace.

    Compute intervals come from the trace's compute records; everything
    between them until the rank's finish is MPI/blocked; the remainder
    until the run's end is post-finish idling.
    """
    if not 0 <= rank < len(result.ranks):
        raise ConfigurationError(f"rank {rank} out of range")
    rank_result = result.ranks[rank]
    segments: list[Segment] = []
    cursor = 0.0
    for record in rank_result.trace.records:
        if record.category != CATEGORY_COMPUTE or record.duration == 0:
            continue
        if record.t_enter > cursor + 1e-12:
            segments.append(Segment(cursor, record.t_enter, "mpi"))
        segments.append(Segment(record.t_enter, record.t_exit, "compute"))
        cursor = record.t_exit
    if rank_result.finish_time > cursor + 1e-12:
        segments.append(Segment(cursor, rank_result.finish_time, "mpi"))
    if result.end_time > rank_result.finish_time + 1e-12:
        segments.append(Segment(rank_result.finish_time, result.end_time, "done"))
    return segments


_GLYPHS = {"compute": "#", "mpi": "-", "done": "."}


def render_timeline(result: WorldResult, *, width: int = 72) -> str:
    """Render all ranks' timelines as aligned character strips."""
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    if result.end_time <= 0:
        raise ConfigurationError("cannot render an empty run")
    lines = [
        f"timeline: 0 .. {result.end_time:.4g} s   (#=compute, -=MPI/blocked, .=finished)"
    ]
    scale = width / result.end_time
    for rank_result in result.ranks:
        cells = ["-"] * width
        for segment in timeline_segments(result, rank_result.rank):
            lo = int(segment.start * scale)
            hi = max(int(segment.end * scale), lo + 1)
            for i in range(lo, min(hi, width)):
                cells[i] = _GLYPHS[segment.kind]
        busy = rank_result.trace.active_time / result.end_time
        lines.append(
            f"rank {rank_result.rank:>2} |{''.join(cells)}| {busy:5.1%} active"
        )
    return "\n".join(lines)
