"""Terminal visualisation: ASCII scatter plots and timelines.

The paper's artifacts are *plots* — energy (y) against time (x), one
marker series per node count.  :mod:`repro.viz.plot` renders exactly
that in plain text, so the experiment harness can show the figures, not
just their tables, with no plotting dependency.  :mod:`repro.viz.timeline`
draws per-rank Gantt strips from the simulation traces.
"""

from repro.viz.plot import AsciiPlot, plot_curve, plot_family
from repro.viz.timeline import render_timeline, timeline_segments

__all__ = [
    "AsciiPlot",
    "plot_curve",
    "plot_family",
    "render_timeline",
    "timeline_segments",
]
