"""Collective algorithms, built from point-to-point messages.

Each algorithm is a generator over the raw request vocabulary so the cost
of a collective emerges from the same message timing as everything else.
Defaults follow the classic MPICH choices of the paper's era:

- broadcast / reduce: binomial tree — ``ceil(log2 P)`` rounds;
- allreduce: reduce + broadcast (any P) or recursive doubling (P a power
  of two);
- barrier: dissemination — ``ceil(log2 P)`` rounds;
- gather / scatter: linear at the root;
- allgather: recursive doubling for powers of two, ring otherwise;
- alltoall: pairwise exchange, ``P-1`` rounds.

The tree algorithms are why well-written codes show *logarithmic*
communication scaling (the paper's step-2 classification for BT, EP, MG,
SP); alltoall-style volume is where quadratic scaling (CG) comes from.

:class:`CollectiveAlgorithms` lets the ablation benchmarks swap tree
algorithms for naive linear ones to show the effect of collective choice
on the fitted communication shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Sequence

from repro.mpi.requests import Irecv, Isend, Wait
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mpi.comm import Comm

Op = Generator[Any, Any, Any]

#: A tiny payload (barrier tokens) still occupies one header on the wire.
HEADER_BYTES = 8


def _send(dest: int, tag: int, nbytes: int, payload: Any = None) -> Op:
    handle = yield Isend(dest=dest, tag=tag, nbytes=nbytes, payload=payload)
    yield Wait(handle)


def _recv(source: int, tag: int) -> Op:
    handle = yield Irecv(source=source, tag=tag)
    return (yield Wait(handle))


def barrier(comm: "Comm", tag: int) -> Op:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of token exchange."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dest = (rank + step) % size
        source = (rank - step) % size
        recv_handle = yield Irecv(source=source, tag=tag)
        yield from _send(dest, tag, HEADER_BYTES)
        yield Wait(recv_handle)
        step <<= 1


def bcast_binomial(comm: "Comm", value: Any, nbytes: int, root: int, tag: int) -> Op:
    """Binomial-tree broadcast (MPICH classic)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            source = (vrank - mask + root) % size
            value = yield from _recv(source, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dest = (vrank + mask + root) % size
            yield from _send(dest, tag, nbytes, value)
        mask >>= 1
    return value


def bcast_linear(comm: "Comm", value: Any, nbytes: int, root: int, tag: int) -> Op:
    """Naive broadcast: root sends to every rank in turn (ablation baseline)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    if rank == root:
        for dest in range(size):
            if dest != root:
                yield from _send(dest, tag, nbytes, value)
        return value
    return (yield from _recv(root, tag))


def reduce(
    comm: "Comm",
    value: Any,
    nbytes: int,
    root: int,
    op: Callable[[Any, Any], Any],
    tag: int,
) -> Op:
    """Binomial-tree reduction; root returns the combined value.

    Combination order is deterministic (children combined in mask order),
    so non-commutative test operators behave reproducibly.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    vrank = (rank - root) % size
    accumulated = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dest = (vrank - mask + root) % size
            yield from _send(dest, tag, nbytes, accumulated)
            break
        peer_v = vrank | mask
        if peer_v < size:
            source = (peer_v + root) % size
            child = yield from _recv(source, tag)
            accumulated = op(accumulated, child)
        mask <<= 1
    return accumulated if rank == root else None


def allreduce_reduce_bcast(
    comm: "Comm",
    value: Any,
    nbytes: int,
    op: Callable[[Any, Any], Any],
    tag: int,
) -> Op:
    """Allreduce as reduce-to-0 followed by broadcast (any rank count)."""
    combined = yield from reduce(comm, value, nbytes, 0, op, tag)
    return (yield from bcast_binomial(comm, combined, nbytes, 0, tag + 1))


def allreduce_recursive_doubling(
    comm: "Comm",
    value: Any,
    nbytes: int,
    op: Callable[[Any, Any], Any],
    tag: int,
) -> Op:
    """Recursive-doubling allreduce; falls back to reduce+bcast off pow2."""
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        return (yield from allreduce_reduce_bcast(comm, value, nbytes, op, tag))
    accumulated = value
    mask = 1
    while mask < size:
        peer = rank ^ mask
        recv_handle = yield Irecv(source=peer, tag=tag)
        yield from _send(peer, tag, nbytes, accumulated)
        other = yield Wait(recv_handle)
        # Combine in rank order so non-commutative ops are deterministic.
        if peer < rank:
            accumulated = op(other, accumulated)
        else:
            accumulated = op(accumulated, other)
        mask <<= 1
    return accumulated


def gather(comm: "Comm", value: Any, nbytes: int, root: int, tag: int) -> Op:
    """Linear gather: every rank sends to root."""
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from _send(root, tag, nbytes, value)
        return None
    values: list[Any] = [None] * size
    values[root] = value
    for source in range(size):
        if source != root:
            values[source] = yield from _recv(source, tag)
    return values


def scatter(
    comm: "Comm", values: Sequence[Any] | None, nbytes: int, root: int, tag: int
) -> Op:
    """Linear scatter: root sends each rank its slot."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ConfigurationError(
                f"scatter root needs a sequence of {size} values"
            )
        for dest in range(size):
            if dest != root:
                yield from _send(dest, tag, nbytes, values[dest])
        return values[root]
    return (yield from _recv(root, tag))


def allgather_ring(comm: "Comm", value: Any, nbytes: int, tag: int) -> Op:
    """Ring allgather: ``P-1`` steps, each forwarding one contribution."""
    size, rank = comm.size, comm.rank
    values: list[Any] = [None] * size
    values[rank] = value
    if size == 1:
        return values
    right = (rank + 1) % size
    left = (rank - 1) % size
    carried_index = rank
    for _ in range(size - 1):
        recv_handle = yield Irecv(source=left, tag=tag)
        yield from _send(right, tag, nbytes, (carried_index, values[carried_index]))
        carried_index, carried_value = yield Wait(recv_handle)
        values[carried_index] = carried_value
    return values


def allgather_recursive_doubling(comm: "Comm", value: Any, nbytes: int, tag: int) -> Op:
    """Recursive-doubling allgather; falls back to ring off powers of two."""
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        return (yield from allgather_ring(comm, value, nbytes, tag))
    values: dict[int, Any] = {rank: value}
    mask = 1
    while mask < size:
        peer = rank ^ mask
        recv_handle = yield Irecv(source=peer, tag=tag)
        yield from _send(peer, tag, nbytes * len(values), dict(values))
        values.update((yield Wait(recv_handle)))
        mask <<= 1
    return [values[i] for i in range(size)]


def alltoall(
    comm: "Comm", values: Sequence[Any] | None, nbytes: int, tag: int
) -> Op:
    """Pairwise-exchange all-to-all: ``P-1`` rounds of sendrecv."""
    size, rank = comm.size, comm.rank
    if values is None:
        values = [None] * size
    if len(values) != size:
        raise ConfigurationError(f"alltoall needs {size} values, got {len(values)}")
    received: list[Any] = [None] * size
    received[rank] = values[rank]
    for round_index in range(1, size):
        peer = rank ^ round_index if (size & (size - 1)) == 0 else (
            (rank + round_index) % size
        )
        source = peer if (size & (size - 1)) == 0 else ((rank - round_index) % size)
        recv_handle = yield Irecv(source=source, tag=tag + round_index)
        yield from _send(peer, tag + round_index, nbytes, values[peer])
        received[source] = yield Wait(recv_handle)
    return received


@dataclass
class CollectiveAlgorithms:
    """Selected collective implementations (swap members for ablations)."""

    bcast: Callable[..., Op] = field(default=bcast_binomial)
    allreduce: Callable[..., Op] = field(default=allreduce_recursive_doubling)
    allgather: Callable[..., Op] = field(default=allgather_recursive_doubling)

    @staticmethod
    def naive() -> "CollectiveAlgorithms":
        """All-linear baselines for the collective-choice ablation."""
        return CollectiveAlgorithms(
            bcast=bcast_linear,
            allreduce=allreduce_reduce_bcast,
            allgather=allgather_ring,
        )
