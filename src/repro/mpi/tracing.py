"""MPI instrumentation traces.

The paper's methodology (Section 4.1, step 1) intercepts all relevant MPI
calls and logs enter/exit timestamps, from which active and idle times are
recovered.  The runtime produces the same records natively:

- every compute block, point-to-point operation, wait, and logical
  collective becomes a :class:`TraceRecord`;
- records emitted *inside* a collective are marked ``nested`` so
  top-level analysis sees the collective as a single call, exactly as the
  paper's interposition library would;
- :class:`RankTrace` recovers the decompositions the model needs:
  ``active_time`` (T^A), ``idle_time`` (T^I, which includes communication
  time), and the conservative *reducible work* between the last send and
  a blocking point (the refined model's T^R).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.util.errors import SimulationError

#: Operation categories.
CATEGORY_COMPUTE = "compute"
CATEGORY_P2P = "p2p"
CATEGORY_WAIT = "wait"
CATEGORY_COLLECTIVE = "collective"
CATEGORY_OTHER = "other"

#: Ops that are *send events* for the reducible-work analysis.
SEND_OPS = frozenset({"isend", "send"})
#: Ops whose completion is a *blocking point* for the analysis.
BLOCKING_OPS = frozenset(
    {
        "wait_recv",
        "recv",
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "sendrecv",
        "waitall",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One intercepted call (or compute block) on one rank."""

    rank: int
    op: str
    category: str
    t_enter: float
    t_exit: float
    nbytes: int = 0
    peer: int | None = None
    nested: bool = False

    def __post_init__(self) -> None:
        if self.t_exit < self.t_enter:
            raise SimulationError(
                f"trace record exits before entering: {self.op} "
                f"[{self.t_enter}, {self.t_exit}]"
            )

    @property
    def duration(self) -> float:
        """Elapsed seconds inside the call."""
        return self.t_exit - self.t_enter


@dataclass
class RankTrace:
    """All trace records of one rank, in time order."""

    rank: int
    records: list[TraceRecord] = field(default_factory=list)

    def add(self, record: TraceRecord) -> None:
        """Append one record.

        Records are emitted when their call *exits* (a collective's
        bracket closes after its constituent messages), so monotonicity is
        enforced on exit times.
        """
        if self.records and record.t_exit < self.records[-1].t_exit - 1e-12:
            raise SimulationError(
                f"rank {self.rank}: out-of-order trace record {record.op} exiting "
                f"at {record.t_exit} after {self.records[-1].t_exit}"
            )
        self.records.append(record)

    def top_level(self) -> Iterator[TraceRecord]:
        """Records as the paper's interposition would see them (no nested)."""
        return (r for r in self.records if not r.nested)

    @property
    def active_time(self) -> float:
        """Total compute time (the paper's per-rank T^A contribution)."""
        return sum(r.duration for r in self.records if r.category == CATEGORY_COMPUTE)

    @property
    def mpi_time(self) -> float:
        """Total top-level time inside MPI calls (communication + blocking)."""
        return sum(
            r.duration
            for r in self.top_level()
            if r.category in (CATEGORY_P2P, CATEGORY_WAIT, CATEGORY_COLLECTIVE)
        )

    def idle_time(self, finish_time: float) -> float:
        """T^I for this rank: everything that is not computation.

        The paper folds communication time into idle time; given the run's
        finish time this is simply ``finish - active``.
        """
        if finish_time < self.active_time - 1e-9:
            raise SimulationError(
                f"rank {self.rank}: finish time {finish_time} is less than "
                f"active time {self.active_time}"
            )
        return max(0.0, finish_time - self.active_time)

    def reducible_time(self) -> float:
        """Conservative reducible work, per the paper's refined model.

        The post-processing "determines the reducible work to be
        computation between the *last send* and a blocking point" — work
        there cannot delay any other node because nothing is sent after
        it until the rank itself blocks.  We walk the top-level records,
        accumulating compute that happens after the most recent send and
        before the next blocking operation.
        """
        reducible = 0.0
        pending = 0.0  # compute since the last send, candidate-reducible
        seen_send = False
        for record in self.top_level():
            if record.op in SEND_OPS:
                seen_send = True
                pending = 0.0
            elif record.category == CATEGORY_COMPUTE:
                if seen_send:
                    pending += record.duration
            elif record.op in BLOCKING_OPS:
                reducible += pending
                pending = 0.0
                seen_send = False
        return reducible

    def message_stats(self) -> tuple[int, int]:
        """(message count, total bytes) of top-level sends on this rank."""
        count = 0
        total = 0
        for record in self.top_level():
            if record.op in SEND_OPS:
                count += 1
                total += record.nbytes
        return count, total

    def call_counts(self) -> dict[str, int]:
        """Top-level call counts per op name (paper step 2's dynamic census)."""
        out: dict[str, int] = {}
        for record in self.top_level():
            if record.category == CATEGORY_COMPUTE:
                continue
            out[record.op] = out.get(record.op, 0) + 1
        return out
