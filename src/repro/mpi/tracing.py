"""MPI instrumentation traces.

The paper's methodology (Section 4.1, step 1) intercepts all relevant MPI
calls and logs enter/exit timestamps, from which active and idle times are
recovered.  The runtime produces the same records natively:

- every compute block, point-to-point operation, wait, and logical
  collective becomes a :class:`TraceRecord`;
- records emitted *inside* a collective are marked ``nested`` so
  top-level analysis sees the collective as a single call, exactly as the
  paper's interposition library would;
- :class:`RankTrace` recovers the decompositions the model needs:
  ``active_time`` (T^A), ``idle_time`` (T^I, which includes communication
  time), and the conservative *reducible work* between the last send and
  a blocking point (the refined model's T^R).

Performance: the runtime logs millions of records on large runs, so
:class:`RankTrace` keeps a flat internal row store filled through
:meth:`RankTrace.add_span` (plain scalars, no object construction on the
simulation hot path) and materialises :class:`TraceRecord` objects
lazily, the first time :attr:`RankTrace.records` (or any record-yielding
view) is read.  All derived times are computed straight off the rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import SimulationError

#: Operation categories.
CATEGORY_COMPUTE = "compute"
CATEGORY_P2P = "p2p"
CATEGORY_WAIT = "wait"
CATEGORY_COLLECTIVE = "collective"
CATEGORY_OTHER = "other"

#: Ops that are *send events* for the reducible-work analysis.
SEND_OPS = frozenset({"isend", "send"})
#: Ops whose completion is a *blocking point* for the analysis.
BLOCKING_OPS = frozenset(
    {
        "wait_recv",
        "recv",
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "sendrecv",
        "waitall",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One intercepted call (or compute block) on one rank."""

    rank: int
    op: str
    category: str
    t_enter: float
    t_exit: float
    nbytes: int = 0
    peer: int | None = None
    nested: bool = False

    def __post_init__(self) -> None:
        if self.t_exit < self.t_enter:
            raise SimulationError(
                f"trace record exits before entering: {self.op} "
                f"[{self.t_enter}, {self.t_exit}]"
            )

    @property
    def duration(self) -> float:
        """Elapsed seconds inside the call."""
        return self.t_exit - self.t_enter


class RankTrace:
    """All trace records of one rank, in time order.

    Rows live in a flat tuple store (``op, category, t_enter, t_exit,
    nbytes, peer, nested``); :class:`TraceRecord` objects are built
    lazily on first access and cached.
    """

    __slots__ = ("rank", "_rows", "_materialized", "_last_exit")

    def __init__(self, rank: int, records: list[TraceRecord] | None = None):
        self.rank = rank
        self._rows: list[tuple] = []
        self._materialized: list[TraceRecord] = []
        self._last_exit = float("-inf")
        if records:
            for record in records:
                self.add(record)

    # ------------------------------------------------------------------
    # Writing

    def add_span(
        self,
        op: str,
        category: str,
        t_enter: float,
        t_exit: float,
        nbytes: int = 0,
        peer: int | None = None,
        nested: bool = False,
    ) -> None:
        """Append one call span without constructing a record object.

        This is the simulation hot path; it performs the same validation
        as :meth:`add` on plain scalars.
        """
        if t_exit < t_enter:
            raise SimulationError(
                f"trace record exits before entering: {op} [{t_enter}, {t_exit}]"
            )
        if t_exit < self._last_exit - 1e-12:
            raise SimulationError(
                f"rank {self.rank}: out-of-order trace record {op} exiting "
                f"at {t_exit} after {self._last_exit}"
            )
        self._last_exit = t_exit
        self._rows.append((op, category, t_enter, t_exit, nbytes, peer, nested))

    def add(self, record: TraceRecord) -> None:
        """Append one record.

        Records are emitted when their call *exits* (a collective's
        bracket closes after its constituent messages), so monotonicity is
        enforced on exit times.
        """
        if record.t_exit < self._last_exit - 1e-12:
            raise SimulationError(
                f"rank {self.rank}: out-of-order trace record {record.op} exiting "
                f"at {record.t_exit} after {self._last_exit}"
            )
        self._last_exit = record.t_exit
        # Keep the caller's object if the cache is in sync, so adding
        # pre-built records never pays a re-materialisation.
        if len(self._materialized) == len(self._rows):
            self._materialized.append(record)
        self._rows.append(
            (
                record.op,
                record.category,
                record.t_enter,
                record.t_exit,
                record.nbytes,
                record.peer,
                record.nested,
            )
        )

    def replicate_rows(self, start_row: int, period: float, copies: int) -> None:
        """Replay the rows from ``start_row`` onward ``copies`` times.

        Copy ``k`` (1-based) has every timestamp shifted by
        ``k * period``.  The steady-state fast-forward layer uses this to
        extrapolate one stable iteration's span pattern over the
        iterations it skips, so :attr:`active_time`,
        :meth:`reducible_time`, :meth:`message_stats`, and
        :meth:`call_counts` all come out exactly as if the iterations had
        been simulated.  Appends bypass :meth:`add_span` validation:
        shifted copies of an in-order window stay in order by
        construction.
        """
        if copies < 1:
            return
        if not 0 <= start_row <= len(self._rows):
            raise SimulationError(
                f"rank {self.rank}: replicate_rows start {start_row} out of "
                f"range 0..{len(self._rows)}"
            )
        rows = self._rows
        window = rows[start_row:]
        if not window:
            return
        for k in range(1, copies + 1):
            shift = k * period
            rows.extend(
                (op, cat, t0 + shift, t1 + shift, nbytes, peer, nested)
                for op, cat, t0, t1, nbytes, peer, nested in window
            )
        self._last_exit = rows[-1][3]

    # ------------------------------------------------------------------
    # Reading

    @property
    def records(self) -> list[TraceRecord]:
        """All records, materialised lazily and cached."""
        cache = self._materialized
        rows = self._rows
        if len(cache) != len(rows):
            rank = self.rank
            cache.extend(
                TraceRecord(rank, op, cat, t0, t1, nbytes, peer, nested)
                for op, cat, t0, t1, nbytes, peer, nested in rows[len(cache):]
            )
        return cache

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankTrace):
            return NotImplemented
        return self.rank == other.rank and self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RankTrace rank={self.rank} records={len(self._rows)}>"

    def top_level(self) -> Iterator[TraceRecord]:
        """Records as the paper's interposition would see them (no nested)."""
        return (r for r in self.records if not r.nested)

    def _top_level_rows(self) -> Iterator[tuple]:
        return (row for row in self._rows if not row[6])

    @property
    def active_time(self) -> float:
        """Total compute time (the paper's per-rank T^A contribution)."""
        return sum(
            row[3] - row[2] for row in self._rows if row[1] == CATEGORY_COMPUTE
        )

    @property
    def mpi_time(self) -> float:
        """Total top-level time inside MPI calls (communication + blocking)."""
        return sum(
            row[3] - row[2]
            for row in self._top_level_rows()
            if row[1] in (CATEGORY_P2P, CATEGORY_WAIT, CATEGORY_COLLECTIVE)
        )

    def idle_time(self, finish_time: float) -> float:
        """T^I for this rank: everything that is not computation.

        The paper folds communication time into idle time; given the run's
        finish time this is simply ``finish - active``.
        """
        if finish_time < self.active_time - 1e-9:
            raise SimulationError(
                f"rank {self.rank}: finish time {finish_time} is less than "
                f"active time {self.active_time}"
            )
        return max(0.0, finish_time - self.active_time)

    def reducible_time(self) -> float:
        """Conservative reducible work, per the paper's refined model.

        The post-processing "determines the reducible work to be
        computation between the *last send* and a blocking point" — work
        there cannot delay any other node because nothing is sent after
        it until the rank itself blocks.  We walk the top-level records,
        accumulating compute that happens after the most recent send and
        before the next blocking operation.
        """
        reducible = 0.0
        pending = 0.0  # compute since the last send, candidate-reducible
        seen_send = False
        for row in self._top_level_rows():
            op = row[0]
            if op in SEND_OPS:
                seen_send = True
                pending = 0.0
            elif row[1] == CATEGORY_COMPUTE:
                if seen_send:
                    pending += row[3] - row[2]
            elif op in BLOCKING_OPS:
                reducible += pending
                pending = 0.0
                seen_send = False
        return reducible

    def message_stats(self) -> tuple[int, int]:
        """(message count, total bytes) of top-level sends on this rank."""
        count = 0
        total = 0
        for row in self._top_level_rows():
            if row[0] in SEND_OPS:
                count += 1
                total += row[4]
        return count, total

    def call_counts(self) -> dict[str, int]:
        """Top-level call counts per op name (paper step 2's dynamic census)."""
        out: dict[str, int] = {}
        for row in self._top_level_rows():
            if row[1] == CATEGORY_COMPUTE:
                continue
            out[row[0]] = out.get(row[0], 0) + 1
        return out
