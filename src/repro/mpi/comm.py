"""The per-rank communicator facade workload code programs against.

Every operation is a generator; rank programs drive them with
``yield from``::

    def program(comm):
        yield from comm.compute(uops=1e6, l2_misses=1e3)
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8192)
        elif comm.rank == 1:
            payload = yield from comm.recv(0)
        total = yield from comm.allreduce(comm.rank, nbytes=8)

Method names and call shapes follow mpi4py's lower-case object API.
Collectives delegate to :mod:`repro.mpi.collectives` and are bracketed in
the trace as single logical calls.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.cluster.memory import ComputeBlock
from repro.mpi import collectives as coll
from repro.mpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    DiskIO,
    Elapse,
    Handle,
    Irecv,
    Isend,
    IterationMark,
    Now,
    SetDiskSpeed,
    SetGear,
    TraceMark,
    Wait,
)
from repro.util.errors import ConfigurationError

#: User tags must stay below this; collectives use the space above it.
COLLECTIVE_TAG_BASE = 1 << 20

#: Generator type of every Comm operation.
Op = Generator[Any, Any, Any]


def _add(a: Any, b: Any) -> Any:
    return a + b


class Comm:
    """One rank's view of the communicator.

    Attributes:
        rank: this process's rank, 0-based.
        size: number of ranks.
        algorithms: the collective algorithm selection (swappable for the
            collective-algorithm ablation).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        algorithms: "coll.CollectiveAlgorithms | None" = None,
    ):
        if size < 1 or not 0 <= rank < size:
            raise ConfigurationError(f"bad rank/size: {rank}/{size}")
        self.rank = rank
        self.size = size
        self.algorithms = algorithms or coll.CollectiveAlgorithms()
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # Local operations

    def compute(
        self,
        uops: float,
        l2_misses: float = 0.0,
        *,
        miss_latency: float | None = None,
    ) -> Op:
        """Execute application work at the node's current gear."""
        yield Compute(ComputeBlock(uops, l2_misses, miss_latency))

    def compute_block(self, block: ComputeBlock) -> Op:
        """Execute a pre-built compute block."""
        yield Compute(block)

    def elapse(self, seconds: float) -> Op:
        """Idle at the current gear for a fixed, gear-independent time."""
        yield Elapse(seconds)

    def set_gear(self, gear_index: int) -> Op:
        """Shift this node to another energy gear."""
        yield SetGear(gear_index)

    def now(self) -> Op:
        """Return the current simulated time."""
        return (yield Now())

    def iteration_mark(self, index: int, total: int) -> Op:
        """Declare an iteration boundary; returns iterations skipped.

        Call at the top of the main loop.  Returns 0 normally; when the
        steady-state fast-forward layer macro-steps, it returns the
        number of iterations analytically skipped and the program must
        advance its loop counter (and any per-iteration payload
        recurrence) by that count::

            while iteration < total:
                skipped = yield from comm.iteration_mark(iteration, total)
                if skipped:
                    iteration += skipped
                    continue
                ... one iteration ...
                iteration += 1

        Only mark loops whose remaining iterations are structurally
        uniform; wrap periodic sub-structure (checkpoints every C
        iterations, a collective every P iterations) in macro-unit
        marks instead.
        """
        return (yield IterationMark(index=index, total=total))

    def disk_write(self, nbytes: int) -> Op:
        """Blocking local disk write (checkpoint-style burst)."""
        yield DiskIO(nbytes)

    def disk_read(self, nbytes: int) -> Op:
        """Blocking local disk read."""
        yield DiskIO(nbytes)

    def set_disk_speed(self, speed_index: int) -> Op:
        """Shift this node's disk spindle speed (DRPM-style)."""
        yield SetDiskSpeed(speed_index)

    # ------------------------------------------------------------------
    # Point-to-point

    def isend(
        self, dest: int, *, nbytes: int, tag: int = 0, payload: Any = None
    ) -> Op:
        """Post an asynchronous send; returns a :class:`Handle`."""
        self._check_user_tag(tag)
        return (yield Isend(dest=dest, tag=tag, nbytes=nbytes, payload=payload))

    def irecv(self, source: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> Op:
        """Post a receive; returns a :class:`Handle`."""
        return (yield Irecv(source=source, tag=tag))

    def wait(self, handle: Handle) -> Op:
        """Block until ``handle`` completes; returns the recv payload."""
        return (yield Wait(handle))

    def waitall(self, handles: Sequence[Handle]) -> Op:
        """Block until every handle completes; returns payloads in order.

        Routed through :meth:`wait` so subclasses that manage gears
        around blocking operations (:class:`repro.policy.PolicyComm`)
        see every wait.
        """
        results = []
        for handle in handles:
            results.append((yield from self.wait(handle)))
        return results

    def send(
        self, dest: int, *, nbytes: int, tag: int = 0, payload: Any = None
    ) -> Op:
        """Blocking (buffered-eager) send."""
        handle = yield from self.isend(dest, nbytes=nbytes, tag=tag, payload=payload)
        yield from self.wait(handle)

    def recv(self, source: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> Op:
        """Blocking receive; returns the message payload."""
        handle = yield from self.irecv(source, tag=tag)
        return (yield from self.wait(handle))

    def sendrecv(
        self,
        dest: int,
        source: int,
        *,
        send_bytes: int,
        tag: int = 0,
        payload: Any = None,
    ) -> Op:
        """Simultaneous send and receive (no deadlock); returns recv payload."""
        yield TraceMark("sendrecv", "begin", send_bytes)
        recv_handle = yield from self.irecv(source, tag=tag)
        send_handle = yield from self.isend(
            dest, nbytes=send_bytes, tag=tag, payload=payload
        )
        value = yield from self.wait(recv_handle)
        yield from self.wait(send_handle)
        yield TraceMark("sendrecv", "end")
        return value

    # ------------------------------------------------------------------
    # Collectives (each traced as one logical call)

    def _collective_tag(self) -> int:
        self._coll_seq += 1
        return COLLECTIVE_TAG_BASE + self._coll_seq

    def _bracketed(self, op: str, nbytes: int, body: Op) -> Op:
        yield TraceMark(op, "begin", nbytes)
        result = yield from body
        yield TraceMark(op, "end")
        return result

    def barrier(self) -> Op:
        """Block until all ranks arrive."""
        return (
            yield from self._bracketed(
                "barrier", 0, coll.barrier(self, self._collective_tag())
            )
        )

    def bcast(self, value: Any = None, *, nbytes: int, root: int = 0) -> Op:
        """Broadcast from ``root``; every rank returns the root's value."""
        self._check_root(root)
        return (
            yield from self._bracketed(
                "bcast",
                nbytes,
                self.algorithms.bcast(self, value, nbytes, root, self._collective_tag()),
            )
        )

    def reduce(
        self,
        value: Any,
        *,
        nbytes: int,
        root: int = 0,
        op: Callable[[Any, Any], Any] = _add,
    ) -> Op:
        """Reduce to ``root``; root returns the combined value, others None."""
        self._check_root(root)
        return (
            yield from self._bracketed(
                "reduce",
                nbytes,
                coll.reduce(self, value, nbytes, root, op, self._collective_tag()),
            )
        )

    def allreduce(
        self,
        value: Any,
        *,
        nbytes: int,
        op: Callable[[Any, Any], Any] = _add,
    ) -> Op:
        """Reduce-to-all; every rank returns the combined value."""
        return (
            yield from self._bracketed(
                "allreduce",
                nbytes,
                self.algorithms.allreduce(
                    self, value, nbytes, op, self._collective_tag()
                ),
            )
        )

    def gather(self, value: Any, *, nbytes: int, root: int = 0) -> Op:
        """Gather to ``root``; root returns the list by rank, others None."""
        self._check_root(root)
        return (
            yield from self._bracketed(
                "gather",
                nbytes,
                coll.gather(self, value, nbytes, root, self._collective_tag()),
            )
        )

    def scatter(
        self, values: Sequence[Any] | None, *, nbytes: int, root: int = 0
    ) -> Op:
        """Scatter from ``root``; each rank returns its slot."""
        self._check_root(root)
        return (
            yield from self._bracketed(
                "scatter",
                nbytes,
                coll.scatter(self, values, nbytes, root, self._collective_tag()),
            )
        )

    def allgather(self, value: Any, *, nbytes: int) -> Op:
        """All-gather; every rank returns the list of all contributions."""
        return (
            yield from self._bracketed(
                "allgather",
                nbytes,
                self.algorithms.allgather(self, value, nbytes, self._collective_tag()),
            )
        )

    def alltoall(self, values: Sequence[Any] | None, *, nbytes: int) -> Op:
        """All-to-all personalized exchange of ``nbytes`` per peer."""
        return (
            yield from self._bracketed(
                "alltoall",
                nbytes,
                coll.alltoall(self, values, nbytes, self._collective_tag()),
            )
        )

    # ------------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ConfigurationError(f"root {root} out of range 0..{self.size - 1}")

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if not 0 <= tag < COLLECTIVE_TAG_BASE:
            raise ConfigurationError(
                f"user tags must be in [0, {COLLECTIVE_TAG_BASE}), got {tag}"
            )
