"""The request vocabulary rank programs yield to the runtime.

A rank program is a generator.  Each ``yield`` hands the runtime one of
the request objects below; the runtime performs it, advances simulated
time as needed, and resumes the generator with the request's result:

============  =============================================  ==============
request       effect                                         resume value
============  =============================================  ==============
Compute       run a compute block at the current gear        None
Elapse        idle for a fixed duration                      None
SetGear       shift the node's energy gear                   None
Now           read the simulated clock                       float seconds
Isend         post an eager asynchronous send                Handle
Irecv         post a receive                                 Handle
Wait          block until a handle completes                 recv payload
TraceMark     bracket a logical (collective) operation       None
IterationMark declare an iteration boundary (fast-forward)   int skipped
============  =============================================  ==============

Workload code normally goes through :class:`repro.mpi.comm.Comm` instead
of yielding these directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.memory import ComputeBlock
from repro.util.errors import ConfigurationError

#: Wildcard receive source (matches any sender).
ANY_SOURCE = -2
#: Wildcard receive tag (matches any tag).
ANY_TAG = -1

_handle_ids = itertools.count()


@dataclass
class Handle:
    """Completion handle for a non-blocking operation.

    Attributes:
        kind: ``'send'`` or ``'recv'``.
        rank: owning rank.
        peer: destination (send) or source (recv; may be ANY_SOURCE).
        tag: message tag (recv may be ANY_TAG).
        nbytes: message size; for receives filled in at match time.
        post_time: when the operation was posted.
        complete_at: simulated completion time, or None while unmatched.
        payload: received payload once complete (recv only).
    """

    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int = 0
    post_time: float = 0.0
    complete_at: float | None = None
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_handle_ids))
    _waiter: Any = None  # RankProcess waiting on this handle, if any

    @property
    def complete(self) -> bool:
        """True once a completion time has been assigned."""
        return self.complete_at is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"done@{self.complete_at:.6f}" if self.complete else "pending"
        return f"<{self.kind} handle #{self.uid} rank={self.rank} peer={self.peer} {state}>"


@dataclass(frozen=True)
class Compute:
    """Execute a compute block at the node's current gear."""

    block: ComputeBlock


@dataclass(frozen=True)
class Elapse:
    """Idle (at idle power) for a fixed duration — gear-independent work."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError(f"Elapse needs seconds >= 0, got {self.seconds}")


@dataclass(frozen=True)
class SetGear:
    """Shift this rank's node to another energy gear (instantaneous)."""

    gear_index: int


@dataclass(frozen=True)
class Now:
    """Read the simulated clock; resumes with the current time."""


@dataclass(frozen=True)
class DiskIO:
    """One local disk burst (read or write — symmetric cost model).

    Requires the node to have a disk configured; the CPU idles while
    the transfer runs (blocking I/O, as the NAS BT-IO style checkpoints
    behave).
    """

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigurationError(f"I/O size must be >= 0, got {self.nbytes}")


@dataclass(frozen=True)
class SetDiskSpeed:
    """Shift the node's disk to another spindle speed (DRPM-style).

    Real multi-speed disks take a substantial fraction of a second to
    settle; the transition time comes from the node's disk spec.
    """

    speed_index: int


@dataclass(frozen=True)
class Isend:
    """Post an eager asynchronous send.

    The paper assumes sends are asynchronous (footnote 4); the runtime
    buffers eagerly, so the send handle completes after the sender-side
    software overhead regardless of whether a receive is posted.
    """

    dest: int
    tag: int
    nbytes: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.tag < 0:
            raise ConfigurationError(f"send tag must be >= 0, got {self.tag}")


@dataclass(frozen=True)
class Irecv:
    """Post a receive for a matching message (wildcards allowed)."""

    source: int
    tag: int


@dataclass(frozen=True)
class Wait:
    """Block until the handle completes; resumes with its payload."""

    handle: Handle


@dataclass(frozen=True)
class IterationMark:
    """Declare an iteration boundary for steady-state fast-forward.

    Emitted by iterative programs at the *top* of each main-loop
    iteration (via :meth:`repro.mpi.comm.Comm.iteration_mark`).  The
    runtime resumes the program with the number of iterations it
    macro-stepped past (0 when fast-forward is off or no jump fired);
    the program must advance its loop counter — and any per-iteration
    payload recurrence — by that count.

    Emitting a mark asserts the remaining ``total - index`` iterations
    all share the event structure of the ones already observed; programs
    with a periodic sub-structure (e.g. a checkpoint every C iterations)
    must mark the enclosing uniform macro-unit instead.
    """

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ConfigurationError(
                f"iteration total must be >= 0, got {self.total}"
            )
        if not 0 <= self.index < max(self.total, 1):
            raise ConfigurationError(
                f"iteration index {self.index} out of range 0..{self.total - 1}"
            )


@dataclass(frozen=True)
class TraceMark:
    """Bracket a logical operation in the trace (zero simulated time).

    ``phase`` is ``'begin'`` or ``'end'``; records emitted between the
    brackets are marked nested so trace analysis sees one logical
    collective instead of its constituent point-to-point messages.
    """

    op: str
    phase: str
    nbytes: int = 0
