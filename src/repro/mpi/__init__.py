"""Simulated MPI: a message-passing runtime over the discrete-event engine.

The public surface mirrors mpi4py's lower-case object API (``send``,
``recv``, ``isend``, ``irecv``, ``bcast``, ``reduce``, ``allreduce``,
``barrier``, ...) except that every operation is a generator the rank
program drives with ``yield from`` — the idiom that lets a plain Python
function act as one MPI rank inside the simulator.

Collectives are built from point-to-point messages (binomial trees,
recursive doubling), so their cost scales with node count exactly the way
the paper's communication classifier expects.
"""

from repro.mpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Elapse,
    Handle,
    Irecv,
    Isend,
    Now,
    SetGear,
    TraceMark,
    Wait,
)
from repro.mpi.fastforward import FastForwardConfig, FastForwardStats
from repro.mpi.tracing import TraceRecord, RankTrace
from repro.mpi.comm import Comm
from repro.mpi.world import World, WorldResult, RankResult

__all__ = [
    "FastForwardConfig",
    "FastForwardStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "Compute",
    "Elapse",
    "Handle",
    "Irecv",
    "Isend",
    "Now",
    "SetGear",
    "TraceMark",
    "Wait",
    "TraceRecord",
    "RankTrace",
    "Comm",
    "World",
    "WorldResult",
    "RankResult",
]
