"""Steady-state fast-forward: macro-step the simulator past periodic iterations.

Every workload in the paper is iterative — Jacobi, the NAS kernels, and
the synthetic benchmark repeat a fixed compute/halo-exchange/allreduce
cycle.  Event-driven simulation replays each of the ~100+ iterations,
so run cost grows linearly with iteration count even though the run is
in a perfect steady state after the first few iterations.  COUNTDOWN
(Cesarini et al.) exploits exactly this per-iteration regularity of MPI
applications at runtime; this module exploits it in simulation.

Mechanism
---------

Programs declare iteration boundaries with
:meth:`repro.mpi.comm.Comm.iteration_mark`.  Between consecutive marks
the runtime feeds every yielded request into a per-rank *iteration
signature* — a running hash of the payload-independent event structure:
op kinds, peers, tags (collective tags normalised, since their sequence
numbers advance every iteration), byte counts, the gear compute blocks
run at, and the compute quanta themselves.  Simulated times and message
payloads are deliberately excluded: the signature captures *structure*.

Structural stability alone is not enough to extrapolate: contention on
the shared fabric settles into *limit cycles* whose period can exceed
one iteration (CG on four nodes cycles with period 3, on eight nodes
with period 7, even though every iteration is structurally identical).
Each rank therefore also keeps a window of inter-mark clock deltas and
detects the smallest period ``p <= max_period`` under which the whole
window is ``delta_rtol``-periodic.  The window must be full
(``2 * max_period`` deltas beyond the warmup iteration) before any
period is trusted, so a rare per-cycle blip cannot masquerade as a
shorter period — which means jumps can engage only on runs longer than
about ``2 * max_period + 3`` iterations.

A macro-step replays the last observed cycle analytically:

- the power-meter intervals of the last ``p`` iterations are replicated
  with shifted timestamps
  (:meth:`repro.cluster.power.PowerMeter.replicate_window`),
- the trace span pattern likewise
  (:meth:`repro.mpi.tracing.RankTrace.replicate_rows`),
- hardware counters are charged the per-cycle delta times the number of
  replicated cycles,
- and the rank resumes at ``t + copies * cycle`` with the skip count,
  so the program advances its loop counter (and replays any
  per-iteration payload recurrence exactly).

The ``reserve`` epilogue iterations (plus any remainder that is not a
whole number of cycles) then run event-by-event, so run tails (final
reductions, result collection) stay exact.

Coordination
------------

Communicating ranks must jump all-or-none in the same round: skipped
iterations skip collective-tag sequence increments, so a lone holdout
would deadlock against peers whose tag space moved on.  The decision is
therefore made one round ahead and committed by unanimous vote:

1. *Arm.*  When the last rank of round ``i`` reaches its mark — i.e.
   every rank has processed exactly marks ``0..i`` — and every rank is
   individually ready (stable signatures, confirmed period, clean
   message queues, identical totals), the round ``i + 1`` is armed with
   a jump of ``J`` iterations, where ``J`` is the largest multiple of
   the ranks' combined cycle length that leaves the reserve epilogue.
   At arming time every rank sits strictly before mark ``i + 1``, so
   no rank can pass the armed round unseen.
2. *Vote.*  Each rank reaching the armed mark validates the iteration
   it just finished (signature still matches the reference, latest
   delta still on-cycle, queues still clean) and parks itself.  Parked
   ranks execute nothing, so the arrival times recorded for the
   remaining ranks are exactly those of an undisturbed run.
3. *Commit.*  When the last rank votes, every parked rank is macro-
   stepped from its *own* recorded arrival state and woken at its own
   ``t + copies * cycle`` — bitwise identical to the times an exact
   per-rank periodic run would produce.
4. *Veto.*  If any rank fails validation (a signature deviation or an
   off-cycle delta landed exactly in the armed round), the round is
   disarmed and already-parked ranks are released immediately with a
   skip count of zero; no iteration is ever extrapolated from an
   unverified cycle.  A veto can only follow a deviation, so runs that
   honour the steady-state contract never pay it.

Ranks whose reference iteration has no communication (EP's compute-only
loop, any single-rank world) skip the protocol and macro-step
independently; single-rank worlds also jump the engine clock itself
(:meth:`repro.sim.engine.Simulator.jump_to`).

A signature deviation anywhere (adaptive gear policies, checkpoint
bursts under per-iteration marks, data-dependent communication)
permanently disables jumping for the run, which silently falls back to
full event-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import TYPE_CHECKING, Any

from repro.mpi.comm import COLLECTIVE_TAG_BASE
from repro.mpi.requests import (
    Compute,
    DiskIO,
    Elapse,
    Irecv,
    Isend,
    IterationMark,
    Now,
    SetDiskSpeed,
    SetGear,
    TraceMark,
    Wait,
)
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mpi.world import World, _RankRuntime


@dataclass(frozen=True)
class FastForwardConfig:
    """Tuning knobs for steady-state detection.

    Attributes:
        k: consecutive identical iteration signatures (after the warmup
            iteration) required before a jump is considered.
        reserve: trailing iterations always simulated event-by-event.
        min_jump: smallest number of iterations worth macro-stepping.
        delta_rtol: relative tolerance for inter-mark clock-delta
            periodicity (steady state must hold in time, not just in
            event structure).
        max_period: largest limit-cycle period, in iterations, the
            detector will consider.  Jumps require ``2 * max_period``
            post-warmup deltas of history, so smaller values engage
            earlier while larger values tolerate longer contention
            cycles (CG needs ``nodes - 1``).
    """

    k: int = 3
    reserve: int = 1
    min_jump: int = 2
    delta_rtol: float = 1e-9
    max_period: int = 16
    #: Cross-run accumulator: every :class:`~repro.mpi.world.World` run
    #: folds its per-run stats in here, so one config threaded through a
    #: sweep doubles as the sweep's fast-forward ledger.  Mutable state,
    #: excluded from equality/hashing/``describe()``.
    aggregate: "FastForwardStats" = field(
        default_factory=lambda: FastForwardStats(), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"fast-forward k must be >= 1, got {self.k}")
        if self.reserve < 0:
            raise ConfigurationError(
                f"fast-forward reserve must be >= 0, got {self.reserve}"
            )
        if self.min_jump < 1:
            raise ConfigurationError(
                f"fast-forward min_jump must be >= 1, got {self.min_jump}"
            )
        if self.delta_rtol < 0:
            raise ConfigurationError(
                f"fast-forward delta_rtol must be >= 0, got {self.delta_rtol}"
            )
        if self.max_period < 1:
            raise ConfigurationError(
                f"fast-forward max_period must be >= 1, got {self.max_period}"
            )

    def describe(self) -> dict:
        """Stable mapping for cache keys and reports."""
        return {
            "k": self.k,
            "reserve": self.reserve,
            "min_jump": self.min_jump,
            "delta_rtol": self.delta_rtol,
            "max_period": self.max_period,
        }


@dataclass
class FastForwardStats:
    """What the fast-forward layer did during one run.

    Attributes:
        marks: iteration marks processed (all ranks).
        jumps: macro-steps executed (one per rank per jump round).
        skipped_iterations: iterations extrapolated instead of simulated,
            summed over ranks.
        deviations: signature mismatches observed (each permanently
            disables jumping for the run).
        armed_rounds: coordinated jump rounds armed by the rank
            consensus check.
        vetoed_rounds: armed rounds abandoned because a rank failed
            last-moment validation at the jump mark.
    """

    marks: int = 0
    jumps: int = 0
    skipped_iterations: int = 0
    deviations: int = 0
    armed_rounds: int = 0
    vetoed_rounds: int = 0

    def merge(self, other: "FastForwardStats") -> None:
        """Fold another run's counters into this one."""
        self.marks += other.marks
        self.jumps += other.jumps
        self.skipped_iterations += other.skipped_iterations
        self.deviations += other.deviations
        self.armed_rounds += other.armed_rounds
        self.vetoed_rounds += other.vetoed_rounds


class _RankState:
    """Signature history and steady-state bookkeeping for one rank."""

    __slots__ = (
        "sig",
        "saw_comm",
        "last_index",
        "total",
        "ordinal",
        "ref_sig",
        "ref_comm",
        "stable",
        "prefix_ok",
        "deltas",
        "hist",
        "clean",
        "period",
        "marks_seen",
    )

    def __init__(self) -> None:
        self.sig = 0
        self.saw_comm = False
        self.last_index: int | None = None
        self.total = 0
        self.ordinal = 0
        self.ref_sig: int | None = None
        self.ref_comm = False
        self.stable = 0
        self.prefix_ok = True
        #: Inter-mark clock deltas, oldest first, capped at 2 * max_period.
        self.deltas: list[float] = []
        #: Per-mark snapshots (time, trace rows, counter totals), capped
        #: at max_period + 1 — enough to replicate any detectable cycle.
        self.hist: list[tuple[float, int, tuple[float, float, float, float]]] = []
        self.clean = True
        self.period = 0
        self.marks_seen = 0


def _norm_tag(tag: int) -> int | str:
    """Collective tags carry a per-rank sequence number that advances
    every iteration; fold them to a constant so the signature sees the
    structure, not the counter."""
    return "coll" if tag >= COLLECTIVE_TAG_BASE else tag


def _enc_compute(rt: "_RankRuntime", r: Compute) -> tuple[tuple, bool]:
    b = r.block
    return ("C", b.uops, b.l2_misses, b.miss_latency, rt.node.gear.index), False


def _enc_isend(rt: "_RankRuntime", r: Isend) -> tuple[tuple, bool]:
    return ("S", r.dest, _norm_tag(r.tag), r.nbytes), True


def _enc_irecv(rt: "_RankRuntime", r: Irecv) -> tuple[tuple, bool]:
    return ("R", r.source, _norm_tag(r.tag)), True


def _enc_wait(rt: "_RankRuntime", r: Wait) -> tuple[tuple, bool]:
    h = r.handle
    return ("W", h.kind, h.peer, _norm_tag(h.tag)), True


def _enc_set_gear(rt: "_RankRuntime", r: SetGear) -> tuple[tuple, bool]:
    return ("G", r.gear_index), False


def _enc_elapse(rt: "_RankRuntime", r: Elapse) -> tuple[tuple, bool]:
    return ("E", r.seconds), False


def _enc_disk_io(rt: "_RankRuntime", r: DiskIO) -> tuple[tuple, bool]:
    return ("D", r.nbytes), False


def _enc_set_disk_speed(rt: "_RankRuntime", r: SetDiskSpeed) -> tuple[tuple, bool]:
    return ("DS", r.speed_index), False


def _enc_now(rt: "_RankRuntime", r: Now) -> tuple[tuple, bool]:
    return ("N",), False


def _enc_trace_mark(rt: "_RankRuntime", r: TraceMark) -> tuple[tuple, bool]:
    return ("T", r.op, r.phase, r.nbytes), False


#: Request class -> (signature tuple, counts as communication).
#: IterationMark is deliberately absent: its index varies per iteration.
_ENCODERS = {
    Compute: _enc_compute,
    Isend: _enc_isend,
    Irecv: _enc_irecv,
    Wait: _enc_wait,
    SetGear: _enc_set_gear,
    Elapse: _enc_elapse,
    DiskIO: _enc_disk_io,
    SetDiskSpeed: _enc_set_disk_speed,
    Now: _enc_now,
    TraceMark: _enc_trace_mark,
}


def _detect_period(cfg: FastForwardConfig, deltas: list[float]) -> int:
    """Smallest period consistent with the *full* delta window (0 = none).

    The window must be full before any period is trusted: a shorter
    confirmation span would let a mostly-constant delta sequence with a
    once-per-cycle blip (CG's contention cycles) pass as period 1 and
    extrapolate the wrong cycle time.
    """
    window = 2 * cfg.max_period
    if len(deltas) < window:
        return 0
    rtol = cfg.delta_rtol
    for p in range(1, cfg.max_period + 1):
        for i in range(1, window - p + 1):
            a, b = deltas[-i], deltas[-i - p]
            if a <= 0 or abs(a - b) > rtol * max(a, b):
                break
        else:
            return p
    return 0


class FastForward:
    """Per-:class:`~repro.mpi.world.World` fast-forward engine."""

    def __init__(self, config: FastForwardConfig, nranks: int) -> None:
        self.config = config
        self.stats = FastForwardStats()
        self.ranks = [_RankState() for _ in range(nranks)]
        self.any_deviation = False
        #: One ``(rank, mark_index, jump, period)`` entry per executed
        #: macro-step, in commit order.  The record/replay batch backend
        #: reads this to locate each jump's replicated window on the
        #: recorded tape; the event path itself never consults it.
        self.jump_log: list[tuple[int, int, int, int]] = []
        #: (mark index, jump iterations) of the round armed for a
        #: coordinated macro-step, if any.
        self.armed: tuple[int, int] | None = None
        #: Ranks parked at the armed mark awaiting unanimity.
        self.votes: list[tuple["_RankRuntime", _RankState]] = []

    # ------------------------------------------------------------------

    def feed(self, rt: "_RankRuntime", request: Any) -> None:
        """Fold one yielded request into the rank's iteration signature."""
        encode = _ENCODERS.get(request.__class__)
        if encode is None:
            return
        st = self.ranks[rt.rank]
        tup, is_comm = encode(rt, request)
        st.sig = hash((st.sig, tup))
        if is_comm:
            st.saw_comm = True

    def on_mark(
        self, world: "World", rt: "_RankRuntime", request: IterationMark
    ) -> tuple[bool, Any]:
        """Handle one iteration boundary; returns (blocked, resume value)."""
        st = self.ranks[rt.rank]
        self.stats.marks += 1
        st.marks_seen += 1
        now = world.engine._now
        idx = request.index
        counters = rt.counters
        snap = (
            now,
            len(rt.trace),
            (
                counters.uops,
                counters.l2_misses,
                counters.cycles,
                counters.compute_seconds,
            ),
        )
        contiguous = st.last_index is not None and idx == st.last_index + 1
        st.last_index = idx
        st.total = request.total
        sig = st.sig
        saw_comm = st.saw_comm
        st.sig = 0
        st.saw_comm = False
        clean = not world._unexpected[rt.rank] and not world._posted[rt.rank]
        st.clean = clean

        if not contiguous:
            # First mark of a loop, or the first mark after a jump:
            # signature history restarts here.
            st.ordinal = 0
            st.ref_sig = None
            st.ref_comm = False
            st.stable = 0
            st.prefix_ok = True
            st.deltas = []
            st.hist = [snap]
            st.period = 0
            return False, 0

        st.ordinal += 1
        if st.ordinal == 1:
            # Warmup iteration: first-touch effects (initial gear shifts,
            # disk spin-up, cold collective trees) are excluded from the
            # signature reference, and its delta from the time window.
            st.hist = [snap]
            return False, 0
        if st.ordinal == 2:
            st.ref_sig = sig
            st.ref_comm = saw_comm
            st.stable = 1
        elif st.prefix_ok:
            if sig != st.ref_sig:
                # A deviation while a round is armed is resolved by the
                # veto in _vote (the next mark this rank reaches *is* the
                # armed one), which also releases any parked peers.
                st.prefix_ok = False
                self.any_deviation = True
                self.stats.deviations += 1
            else:
                st.stable += 1

        st.deltas.append(now - st.hist[-1][0])
        if len(st.deltas) > 2 * self.config.max_period:
            del st.deltas[0]
        st.hist.append(snap)
        if len(st.hist) > self.config.max_period + 1:
            del st.hist[0]

        armed = self.armed
        if armed is not None and armed[0] == idx:
            return self._vote(world, rt, st, armed[1], clean)
        if not st.ref_comm:
            jump = self._solo_jump(world, rt, st, idx, request.total)
            if jump:
                return self._execute_solo(world, rt, st, jump)
            return False, 0
        self._try_arm(idx, request.total)
        return False, 0

    # ------------------------------------------------------------------

    def _try_arm(self, idx: int, total: int) -> None:
        """Arm round ``idx + 1`` for a coordinated jump if every rank is
        ready.  Only the last rank of round ``idx`` can pass the
        ``marks_seen`` equality, so arming happens while every rank sits
        strictly before the armed mark — no rank can slip past unseen."""
        cfg = self.config
        if self.armed is not None or self.any_deviation:
            return
        nxt = idx + 1
        lcm = 1
        for st in self.ranks:
            if (
                st.marks_seen != nxt
                or st.total != total
                or not st.prefix_ok
                or st.stable < cfg.k
                or not st.ref_comm
                or not st.clean
            ):
                return
            period = _detect_period(cfg, st.deltas)
            if not period:
                return
            st.period = period
            lcm = lcm * period // gcd(lcm, period)
            if lcm > cfg.max_period:
                return
        remaining = total - cfg.reserve - nxt
        jump = (remaining // lcm) * lcm
        if jump < cfg.min_jump:
            return
        self.armed = (nxt, jump)
        self.stats.armed_rounds += 1

    def _vote(
        self,
        world: "World",
        rt: "_RankRuntime",
        st: _RankState,
        jump: int,
        clean: bool,
    ) -> tuple[bool, Any]:
        """One rank arrives at the armed mark: validate, park, commit."""
        if not (clean and self._on_cycle(st)):
            # The iteration between arming and jumping deviated (the only
            # way validation can fail); abandon the round and release any
            # already-parked peers with a zero skip count.
            self.armed = None
            self.stats.vetoed_rounds += 1
            self._release(world)
            return False, 0
        self.votes.append((rt, st))
        if len(self.votes) == len(self.ranks):
            self._commit(world, jump)
        rt.process.block("fast-forward")
        return True, None

    def _on_cycle(self, st: _RankState) -> bool:
        """Is the rank's latest iteration still on its detected cycle?"""
        period = st.period
        deltas = st.deltas
        if not st.prefix_ok or period == 0 or len(deltas) < period + 1:
            return False
        a, b = deltas[-1], deltas[-1 - period]
        return a > 0 and abs(a - b) <= self.config.delta_rtol * max(a, b)

    def _commit(self, world: "World", jump: int) -> None:
        """Unanimity: macro-step every parked rank from its own recorded
        arrival state.  Parked ranks executed nothing since arriving, so
        those states are exactly an undisturbed run's."""
        for rt, st in self.votes:
            target = self._replicate(rt, st, jump)
            world._resume_later(rt, target, jump)
        self.votes = []
        self.armed = None

    def _release(self, world: "World") -> None:
        """Veto: wake parked ranks with nothing skipped."""
        now = world.engine._now
        for rt, _st in self.votes:
            world._resume_later(rt, now, 0)
        self.votes = []

    # ------------------------------------------------------------------

    def _solo_jump(
        self,
        world: "World",
        rt: "_RankRuntime",
        st: _RankState,
        idx: int,
        total: int,
    ) -> int:
        """Iterations a communication-free rank may jump alone (0 = none)."""
        cfg = self.config
        if not st.prefix_ok or st.stable < cfg.k or not st.clean:
            return 0
        period = _detect_period(cfg, st.deltas)
        if not period:
            return 0
        remaining = total - cfg.reserve - idx
        jump = (remaining // period) * period
        if jump < cfg.min_jump:
            return 0
        st.period = period
        return jump

    def _execute_solo(
        self, world: "World", rt: "_RankRuntime", st: _RankState, jump: int
    ) -> tuple[bool, Any]:
        """Macro-step one rank that needs no peer coordination."""
        target = self._replicate(rt, st, jump)
        if world.nodes == 1:
            # Nothing else is running: move the clock itself.
            world.engine.jump_to(target)
            return False, jump
        world._resume_later(rt, target, jump)
        rt.process.block("fast-forward")
        return True, None

    def _replicate(
        self, rt: "_RankRuntime", st: _RankState, jump: int
    ) -> float:
        """Replay ``jump`` iterations as copies of the rank's last cycle;
        returns the simulated time the rank resumes at."""
        period = st.period
        copies = jump // period
        t0, rows0, counters0 = st.hist[-1 - period]
        t1 = st.hist[-1][0]
        cycle = t1 - t0
        rt.meter.replicate_window(t0, t1, cycle, copies)
        rt.trace.replicate_rows(rows0, cycle, copies)
        counters = rt.counters
        counters.charge(
            (counters.uops - counters0[0]) * copies,
            (counters.l2_misses - counters0[1]) * copies,
            (counters.cycles - counters0[2]) * copies,
            (counters.compute_seconds - counters0[3]) * copies,
        )
        self.stats.jumps += 1
        self.stats.skipped_iterations += jump
        assert st.last_index is not None
        self.jump_log.append((rt.rank, st.last_index, jump, period))
        return t1 + copies * cycle
