"""The runtime that executes rank programs on a simulated cluster.

:class:`World` couples three things:

- a :class:`repro.sim.engine.Simulator` event loop,
- one :class:`repro.sim.process.RankProcess` per MPI rank, each on its own
  simulated node (the paper runs one rank per node),
- per-rank accounting: a wall-outlet :class:`PowerMeter`, a hardware
  :class:`CounterBank`, and an MPI :class:`RankTrace`.

Execution semantics (matching the paper's platform assumptions):

- compute blocks run at the node's current gear and draw active power;
- all time a rank is *not* computing — posting sends, blocked in waits,
  idling after finishing while other ranks still run — draws the node's
  idle power at its gear (the paper: "the computational load during MPI
  communication is quite low");
- sends are eager/asynchronous (paper footnote 4): the sender is released
  after the software overhead regardless of the receiver;
- message wire time is gear-independent.

Energy is accounted until the *last* rank finishes: nodes that finish
early keep drawing idle power, exactly as the paper's wall-outlet meters
would record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.cluster.cluster import ClusterSpec
from repro.cluster.counters import CounterBank
from repro.cluster.node import NodeState
from repro.cluster.power import PowerMeter
from repro.mpi.comm import Comm
from repro.mpi.fastforward import FastForward, FastForwardConfig, FastForwardStats
from repro.mpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    DiskIO,
    Elapse,
    Handle,
    Irecv,
    Isend,
    IterationMark,
    Now,
    SetDiskSpeed,
    SetGear,
    TraceMark,
    Wait,
)
from repro.mpi.tracing import (
    CATEGORY_COMPUTE,
    CATEGORY_OTHER,
    CATEGORY_P2P,
    CATEGORY_WAIT,
    CATEGORY_COLLECTIVE,
    RankTrace,
)
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState, RankProcess
from repro.util.errors import ConfigurationError, DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.observer import RunObserver

#: Type of the per-rank program factory: called with this rank's Comm.
ProgramFactory = Callable[[Comm], Any]


@dataclass(slots=True)
class _Message:
    """A message in flight (or buffered unexpected at the receiver)."""

    source: int
    dest: int
    tag: int
    nbytes: int
    payload: Any
    arrival: float
    seq: int


class _RankRuntime:
    """Mutable bookkeeping for one rank."""

    def __init__(self, rank: int, node: NodeState, process: RankProcess):
        self.rank = rank
        self.node = node
        self.process = process
        self.meter = PowerMeter()
        self.counters = CounterBank()
        self.trace = RankTrace(rank)
        self.finish_time: float | None = None
        # Start of a blocked span whose idle energy is recorded on resume.
        self.pending_idle_from: float | None = None
        # Deferred wait trace record: (op, t_enter, nbytes, peer).
        self.pending_wait: tuple[str, float, int, int | None] | None = None
        self.collective_stack: list[tuple[str, float, int]] = []

    @property
    def depth(self) -> int:
        return len(self.collective_stack)


@dataclass
class RankResult:
    """Everything measured for one rank."""

    rank: int
    finish_time: float
    meter: PowerMeter
    counters: CounterBank
    trace: RankTrace
    return_value: Any
    final_gear: int

    @property
    def energy(self) -> float:
        """This node's total energy over the whole run, joules."""
        return self.meter.energy()


@dataclass
class WorldResult:
    """Outcome of one complete simulated run."""

    cluster: ClusterSpec
    nodes: int
    end_time: float
    ranks: list[RankResult]
    #: Macro-stepping accounting; None when fast-forward was off.
    fast_forward: FastForwardStats | None = None

    @property
    def total_energy(self) -> float:
        """Cumulative energy of all nodes, joules (the paper's y-axis)."""
        return sum(r.energy for r in self.ranks)

    @property
    def elapsed(self) -> float:
        """Wall-clock execution time, seconds (the paper's x-axis)."""
        return self.end_time

    @property
    def active_time(self) -> float:
        """T^A: the maximum per-rank computation time (paper step 1)."""
        return max(r.trace.active_time for r in self.ranks)

    @property
    def idle_time(self) -> float:
        """T^I: idle + communication time of the T^A-defining run.

        Computed as ``end_time - T^A`` so that T^A + T^I is exactly the
        execution time, as the model requires.
        """
        return max(0.0, self.end_time - self.active_time)

    @property
    def counters(self) -> CounterBank:
        """All ranks' hardware counters summed."""
        return CounterBank.total([r.counters for r in self.ranks])

    @property
    def upm(self) -> float:
        """Whole-run micro-ops per L2 miss."""
        return self.counters.upm

    def reducible_time(self) -> float:
        """T^R: maximum per-rank reducible work (refined-model input)."""
        return max(r.trace.reducible_time() for r in self.ranks)

    def return_values(self) -> list[Any]:
        """Per-rank program return values, by rank."""
        return [r.return_value for r in self.ranks]


class World:
    """Runs one program (one generator per rank) on a simulated cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        program: ProgramFactory,
        *,
        nodes: int,
        gear: int | Sequence[int] = 1,
        max_events: int | None = 50_000_000,
        observer: "RunObserver | None" = None,
        fast_forward: FastForwardConfig | None = None,
    ):
        if isinstance(gear, int):
            gears = [gear] * nodes
        else:
            gears = list(gear)
            if len(gears) != nodes:
                raise ConfigurationError(
                    f"{len(gears)} gears given for {nodes} nodes"
                )
        for g in gears:
            cluster.validate_run(nodes, g)

        self.cluster = cluster
        self.nodes = nodes
        self._observer = observer
        self._ff = (
            FastForward(fast_forward, nodes) if fast_forward is not None else None
        )
        self.engine = Simulator()
        self.network = cluster.network_model()
        # The per-endpoint software overhead is a link constant; one
        # attribute read per message instead of two calls per match.
        self._endpoint_overhead = self.network.endpoint_overhead()
        self._max_events = max_events
        self._msg_seq = 0
        # Per-destination matching indexes: (source, tag) -> FIFO queue.
        # Wildcard receives are resolved by comparing queue heads, so
        # matching is O(distinct pairs) instead of a linear scan over
        # every buffered message/posted receive.
        self._unexpected: list[dict[tuple[int, int], deque[_Message]]] = [
            {} for _ in range(nodes)
        ]
        self._posted: list[dict[tuple[int, int], deque[Handle]]] = [
            {} for _ in range(nodes)
        ]
        self._runtimes: list[_RankRuntime] = []
        for rank in range(nodes):
            comm = Comm(rank=rank, size=nodes)
            node = NodeState(cluster.node, gears[rank])
            gen = program(comm)
            self._runtimes.append(_RankRuntime(rank, node, RankProcess(rank, gen)))
        self._started = False

    # ------------------------------------------------------------------
    # Public API

    def run(self) -> WorldResult:
        """Execute all ranks to completion and return the measurements.

        Raises:
            DeadlockError: some rank never finished (all events drained
                while a wait was still pending).
        """
        if self._started:
            raise SimulationError("a World can only be run once")
        self._started = True
        if self._observer is not None:
            # Publish the starting gear of every node so gear timelines
            # are complete even for runs that never shift.
            for rt in self._runtimes:
                self._observer.gear_change(rt.rank, 0.0, rt.node.gear.index)
        for rt in self._runtimes:
            self._advance(rt, None)
        self.engine.run(max_events=self._max_events)

        stuck = [rt for rt in self._runtimes if not rt.process.done]
        if stuck:
            detail = "; ".join(
                f"rank {rt.rank} blocked on {rt.process.blocked_on or 'unknown'}"
                for rt in stuck
            )
            raise DeadlockError(f"simulation deadlocked: {detail}")

        end_time = max(rt.finish_time or 0.0 for rt in self._runtimes)
        results = []
        for rt in self._runtimes:
            # Nodes that finished early idle (at their gear) until the
            # last rank completes — the meter at the wall keeps running.
            assert rt.finish_time is not None
            if rt.finish_time < end_time:
                rt.meter.record(rt.finish_time, end_time, rt.node.idle_power())
            results.append(
                RankResult(
                    rank=rt.rank,
                    finish_time=rt.finish_time,
                    meter=rt.meter,
                    counters=rt.counters,
                    trace=rt.trace,
                    return_value=rt.process.result,
                    final_gear=rt.node.gear.index,
                )
            )
        if self._ff is not None:
            self._ff.config.aggregate.merge(self._ff.stats)
        return WorldResult(
            cluster=self.cluster,
            nodes=self.nodes,
            end_time=end_time,
            ranks=results,
            fast_forward=self._ff.stats if self._ff is not None else None,
        )

    # ------------------------------------------------------------------
    # Interpreter

    def _advance(self, rt: _RankRuntime, value: Any) -> None:
        """Resume a rank and dispatch its requests until it blocks/finishes.

        The generator protocol is driven directly (rather than through
        :meth:`RankProcess.resume`) — this loop runs once per yielded
        request and the wrapper call was measurable.  The process state
        invariants are identical: DONE + result on return, FAILED on an
        escaping exception, BLOCKED set by the handler that blocks.
        """
        handlers = self._HANDLERS
        ff = self._ff
        process = rt.process
        send = process._gen.send
        while True:
            try:
                request = send(value)
            except StopIteration as stop:
                process.state = ProcessState.DONE
                process.result = stop.value
                process.blocked_on = None
                rt.finish_time = self.engine._now
                return
            except Exception:
                process.state = ProcessState.FAILED
                raise
            if ff is not None:
                ff.feed(rt, request)
            handler = handlers.get(request.__class__)
            if handler is None:
                raise SimulationError(
                    f"rank {rt.rank} yielded an unknown request: {request!r}"
                )
            blocked, value = handler(self, rt, request)
            if blocked:
                return

    def _resume_later(self, rt: _RankRuntime, at: float, value: Any = None) -> None:
        """Schedule a resume, closing any pending idle span on arrival.

        The callback flushes the rank's deferred idle-energy span and
        deferred wait-trace record inline; when it fires the simulated
        clock is exactly ``at``, so the end timestamps are taken from the
        closure instead of re-reading the engine.
        """

        def callback() -> None:
            if rt.pending_idle_from is not None:
                rt.meter.record(rt.pending_idle_from, at, rt.node.idle_power())
                rt.pending_idle_from = None
            pending_wait = rt.pending_wait
            if pending_wait is not None:
                rt.pending_wait = None
                op, t_enter, nbytes, peer = pending_wait
                rt.trace.add_span(
                    op,
                    CATEGORY_WAIT,
                    t_enter,
                    at,
                    nbytes,
                    peer,
                    bool(rt.collective_stack),
                )
            self._advance(rt, value)

        self.engine.schedule(at, callback)

    def _trace(
        self,
        rt: _RankRuntime,
        op: str,
        category: str,
        t_enter: float,
        t_exit: float,
        nbytes: int = 0,
        peer: int | None = None,
    ) -> None:
        rt.trace.add_span(
            op,
            category,
            t_enter,
            t_exit,
            nbytes,
            peer,
            bool(rt.collective_stack),
        )

    def _dispatch(self, rt: _RankRuntime, request: Any) -> tuple[bool, Any]:
        """Perform one request; returns (blocked, resume_value)."""
        handler = self._HANDLERS.get(request.__class__)
        if handler is None:
            raise SimulationError(
                f"rank {rt.rank} yielded an unknown request: {request!r}"
            )
        return handler(self, rt, request)

    def _do_now(self, rt: _RankRuntime, request: Now) -> tuple[bool, Any]:
        return False, self.engine._now

    def _do_set_gear(self, rt: _RankRuntime, request: SetGear) -> tuple[bool, Any]:
        now = self.engine._now
        self.cluster.validate_run(self.nodes, request.gear_index)
        if request.gear_index == rt.node.gear.index:
            return False, None
        switch = self.cluster.node.cpu.gear_switch_latency
        old_gear = rt.node.gear.index
        rt.node.set_gear(request.gear_index)
        if self._observer is not None:
            self._observer.gear_change(
                rt.rank, now, request.gear_index, old_gear
            )
        self._trace(rt, "set_gear", CATEGORY_OTHER, now, now + switch)
        if switch == 0:
            return False, None
        # The core stalls through the PLL relock/voltage ramp,
        # drawing idle power at the *new* operating point.
        rt.meter.record(now, now + switch, rt.node.idle_power())
        self._resume_later(rt, now + switch)
        rt.process.block("gear switch")
        return True, None

    def _do_elapse(self, rt: _RankRuntime, request: Elapse) -> tuple[bool, Any]:
        now = self.engine._now
        if request.seconds == 0:
            return False, None
        rt.meter.record(now, now + request.seconds, rt.node.idle_power())
        self._trace(rt, "elapse", CATEGORY_OTHER, now, now + request.seconds)
        self._resume_later(rt, now + request.seconds)
        rt.process.block("elapse")
        return True, None

    def _do_disk_io(self, rt: _RankRuntime, request: DiskIO) -> tuple[bool, Any]:
        now = self.engine._now
        duration = rt.node.io_duration(request.nbytes)
        rt.meter.record(now, now + duration, rt.node.io_power())
        self._trace(
            rt, "disk_io", CATEGORY_OTHER, now, now + duration, request.nbytes
        )
        if duration == 0:
            return False, None
        self._resume_later(rt, now + duration)
        rt.process.block("disk I/O")
        return True, None

    def _do_set_disk_speed(
        self, rt: _RankRuntime, request: SetDiskSpeed
    ) -> tuple[bool, Any]:
        now = self.engine._now
        transition = rt.node.set_disk_speed(request.speed_index)
        self._trace(
            rt, "set_disk_speed", CATEGORY_OTHER, now, now + transition
        )
        if transition == 0:
            return False, None
        rt.meter.record(now, now + transition, rt.node.idle_power())
        self._resume_later(rt, now + transition)
        rt.process.block("disk speed transition")
        return True, None

    def _do_compute(self, rt: _RankRuntime, request: Compute) -> tuple[bool, Any]:
        now = self.engine._now
        block = request.block
        duration = rt.node.compute_duration(block)
        power = rt.node.compute_power(block)
        rt.meter.record(now, now + duration, power)
        cycles = duration * rt.node.gear.frequency_hz
        rt.counters.charge(block.uops, block.l2_misses, cycles, duration)
        rt.trace.add_span(
            "compute",
            CATEGORY_COMPUTE,
            now,
            now + duration,
            0,
            None,
            bool(rt.collective_stack),
        )
        if duration == 0:
            return False, None
        self._resume_later(rt, now + duration)
        rt.process.block("compute")
        return True, None

    def _do_isend(self, rt: _RankRuntime, request: Isend) -> tuple[bool, Any]:
        now = self.engine._now
        if not 0 <= request.dest < self.nodes:
            raise SimulationError(
                f"rank {rt.rank} sends to invalid rank {request.dest}"
            )
        overhead = self._endpoint_overhead
        inject = now + overhead
        arrival = self.network.schedule_transfer(
            inject, request.nbytes, same_node=(request.dest == rt.rank)
        )
        self._msg_seq += 1
        message = _Message(
            source=rt.rank,
            dest=request.dest,
            tag=request.tag,
            nbytes=request.nbytes,
            payload=request.payload,
            arrival=arrival,
            seq=self._msg_seq,
        )
        self._route(message)
        handle = Handle(
            kind="send",
            rank=rt.rank,
            peer=request.dest,
            tag=request.tag,
            nbytes=request.nbytes,
            post_time=now,
            complete_at=inject,
        )
        rt.trace.add_span(
            "isend",
            CATEGORY_P2P,
            now,
            inject,
            request.nbytes,
            request.dest,
            bool(rt.collective_stack),
        )
        if overhead == 0:
            return False, handle
        rt.pending_idle_from = now
        self._resume_later(rt, inject, handle)
        rt.process.block("isend overhead")
        return True, None

    def _do_irecv(self, rt: _RankRuntime, request: Irecv) -> tuple[bool, Handle]:
        now = self.engine._now
        if request.source != ANY_SOURCE and not 0 <= request.source < self.nodes:
            raise SimulationError(
                f"rank {rt.rank} receives from invalid rank {request.source}"
            )
        handle = Handle(
            kind="recv",
            rank=rt.rank,
            peer=request.source,
            tag=request.tag,
            post_time=now,
        )
        rt.trace.add_span(
            "irecv",
            CATEGORY_P2P,
            now,
            now,
            0,
            request.source,
            bool(rt.collective_stack),
        )
        message = self._match_unexpected(rt.rank, handle)
        if message is not None:
            self._complete_recv(handle, message)
        else:
            posted = self._posted[rt.rank]
            key = (request.source, request.tag)
            queue = posted.get(key)
            if queue is None:
                posted[key] = deque((handle,))
            else:
                queue.append(handle)
        return False, handle

    def _do_wait(self, rt: _RankRuntime, request: Wait) -> tuple[bool, Any]:
        now = self.engine._now
        handle = request.handle
        if handle.rank != rt.rank:
            raise SimulationError(
                f"rank {rt.rank} waits on rank {handle.rank}'s handle"
            )
        op = "wait_recv" if handle.kind == "recv" else "wait_send"
        if handle.complete_at is not None and handle.complete_at <= now:
            rt.trace.add_span(
                op,
                CATEGORY_WAIT,
                now,
                now,
                handle.nbytes,
                handle.peer,
                bool(rt.collective_stack),
            )
            return False, handle.payload
        rt.pending_idle_from = now
        rt.pending_wait = (op, now, handle.nbytes, handle.peer)
        if handle.complete_at is not None:
            self._resume_later(rt, handle.complete_at, handle.payload)
        else:
            handle._waiter = rt
        rt.process.block(
            f"{op}(peer={handle.peer}, tag={handle.tag})"
        )
        return True, None

    def _do_iteration_mark(
        self, rt: _RankRuntime, request: IterationMark
    ) -> tuple[bool, Any]:
        ff = self._ff
        if ff is None:
            # Fast-forward off: marks are free and change nothing, so
            # default runs stay byte-identical.
            return False, 0
        return ff.on_mark(self, rt, request)

    def _do_trace_mark(self, rt: _RankRuntime, request: TraceMark) -> tuple[bool, Any]:
        now = self.engine._now
        if request.phase == "begin":
            rt.collective_stack.append((request.op, now, request.nbytes))
            return False, None
        if request.phase != "end":
            raise SimulationError(f"bad TraceMark phase {request.phase!r}")
        if not rt.collective_stack:
            raise SimulationError(
                f"rank {rt.rank}: TraceMark end '{request.op}' without begin"
            )
        op, t_begin, nbytes = rt.collective_stack.pop()
        if op != request.op:
            raise SimulationError(
                f"rank {rt.rank}: TraceMark mismatch: begin '{op}', end '{request.op}'"
            )
        rt.trace.add_span(
            op,
            CATEGORY_COLLECTIVE,
            t_begin,
            now,
            nbytes or request.nbytes,
            None,
            bool(rt.collective_stack),
        )
        return False, None

    # ------------------------------------------------------------------
    # Message routing

    def _route(self, message: _Message) -> None:
        """Match a newly-sent message against posted receives, or buffer it.

        Posted receives are indexed by ``(source, tag)``; an arriving
        message can match at most four buckets (exact, wildcard source,
        wildcard tag, both).  Each bucket is FIFO by posting order, so
        the earliest-posted matching receive is the minimum handle uid
        among the bucket heads — identical to the old linear scan.
        """
        posted = self._posted[message.dest]
        if posted:
            source, tag = message.source, message.tag
            best_key: tuple[int, int] | None = None
            best_uid = -1
            for key in (
                (source, tag),
                (ANY_SOURCE, tag),
                (source, ANY_TAG),
                (ANY_SOURCE, ANY_TAG),
            ):
                queue = posted.get(key)
                if queue:
                    uid = queue[0].uid
                    if best_key is None or uid < best_uid:
                        best_key, best_uid = key, uid
            if best_key is not None:
                queue = posted[best_key]
                handle = queue.popleft()
                if not queue:
                    del posted[best_key]
                self._complete_recv(handle, message)
                return
        unexpected = self._unexpected[message.dest]
        key = (message.source, message.tag)
        queue = unexpected.get(key)
        if queue is None:
            unexpected[key] = deque((message,))
        else:
            queue.append(message)

    def _match_unexpected(self, rank: int, handle: Handle) -> _Message | None:
        """Earliest buffered message matching ``handle``, removed, or None.

        The buffer is indexed by ``(source, tag)``; a fully-specified
        receive is one dict lookup.  Wildcard receives compare the heads
        of the matching buckets and take the minimum message sequence
        number — send order, exactly as the old linear scan did.
        """
        unexpected = self._unexpected[rank]
        if not unexpected:
            return None
        peer, tag = handle.peer, handle.tag
        if peer != ANY_SOURCE and tag != ANY_TAG:
            key = (peer, tag)
            queue = unexpected.get(key)
            if not queue:
                return None
            message = queue.popleft()
            if not queue:
                del unexpected[key]
            return message
        best_key: tuple[int, int] | None = None
        best_seq = -1
        for key, queue in unexpected.items():
            if peer != ANY_SOURCE and key[0] != peer:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            seq = queue[0].seq
            if best_key is None or seq < best_seq:
                best_key, best_seq = key, seq
        if best_key is None:
            return None
        queue = unexpected[best_key]
        message = queue.popleft()
        if not queue:
            del unexpected[best_key]
        return message

    @staticmethod
    def _matches(handle: Handle, message: _Message) -> bool:
        if handle.peer != ANY_SOURCE and handle.peer != message.source:
            return False
        if handle.tag != ANY_TAG and handle.tag != message.tag:
            return False
        return True

    def _complete_recv(self, handle: Handle, message: _Message) -> None:
        overhead = self._endpoint_overhead
        ready = max(handle.post_time, message.arrival, self.engine._now)
        handle.complete_at = ready + overhead
        handle.nbytes = message.nbytes
        handle.payload = message.payload
        handle.peer = message.source
        waiter = handle._waiter
        if waiter is not None:
            handle._waiter = None
            # Update the deferred trace record with the real message size.
            if waiter.pending_wait is not None:
                op, t_enter, _, _ = waiter.pending_wait
                waiter.pending_wait = (op, t_enter, message.nbytes, message.source)
            self._resume_later(waiter, handle.complete_at, handle.payload)


#: Request-class dispatch table: one dict lookup per yielded request in
#: place of a ten-way isinstance chain.  A class attribute so every World
#: shares it; handlers are plain functions called as handler(self, rt, req).
World._HANDLERS = {
    Compute: World._do_compute,
    Isend: World._do_isend,
    Irecv: World._do_irecv,
    Wait: World._do_wait,
    Now: World._do_now,
    SetGear: World._do_set_gear,
    Elapse: World._do_elapse,
    DiskIO: World._do_disk_io,
    SetDiskSpeed: World._do_set_disk_speed,
    TraceMark: World._do_trace_mark,
    IterationMark: World._do_iteration_mark,
}
