"""The scenario registry: named factories producing spec lists.

A registry entry maps a name (``"figure1"``, ``"weak-scaling"``) to a
*factory* — a callable returning an ordered ``list[ScenarioSpec]`` —
plus tags and a description.  Factories, not frozen lists, because
nearly every scenario set is parameterized (workload ``scale``, pack
sizes); the registry passes keyword arguments straight through.

The module-level :data:`REGISTRY` is the default instance.  The paper
artifacts (:mod:`repro.scenarios.paper`) and the generated packs
(:mod:`repro.scenarios.packs`) register themselves on import of
:mod:`repro.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Iterator

from repro.scenarios.spec import ScenarioSpec
from repro.util.errors import ConfigurationError

#: A scenario-set factory: keyword parameters -> ordered spec list.
Factory = Callable[..., list[ScenarioSpec]]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered scenario set."""

    name: str
    factory: Factory
    tags: tuple[str, ...] = ()
    description: str = ""

    def build(self, **params: Any) -> list[ScenarioSpec]:
        """Build the spec list (validates names are unique)."""
        specs = self.factory(**params)
        seen: set[str] = set()
        for spec in specs:
            if spec.name in seen:
                raise ConfigurationError(
                    f"scenario set {self.name!r} produced duplicate "
                    f"scenario name {spec.name!r}"
                )
            seen.add(spec.name)
        return specs


@dataclass
class ScenarioRegistry:
    """Name -> scenario-set factory mapping."""

    _entries: dict[str, RegistryEntry] = dataclass_field(default_factory=dict)

    def register(
        self,
        name: str,
        factory: Factory | None = None,
        *,
        tags: tuple[str, ...] = (),
        description: str = "",
    ):
        """Register a factory under ``name`` (usable as a decorator).

        Raises:
            ConfigurationError: the name is already taken.
        """

        def _add(fn: Factory) -> Factory:
            if name in self._entries:
                raise ConfigurationError(
                    f"scenario set {name!r} is already registered"
                )
            desc = description
            if not desc and fn.__doc__:
                desc = fn.__doc__.strip().splitlines()[0]
            self._entries[name] = RegistryEntry(
                name=name, factory=fn, tags=tuple(tags), description=desc
            )
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def names(self, *, tag: str | None = None) -> list[str]:
        """Registered names, sorted; optionally filtered by tag."""
        return sorted(
            name
            for name, entry in self._entries.items()
            if tag is None or tag in entry.tags
        )

    def entry(self, name: str) -> RegistryEntry:
        """The entry for ``name``.

        Raises:
            ConfigurationError: unknown name (the message lists what is
                registered, so CLI typos are self-correcting).
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario set {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def build(self, name: str, **params: Any) -> list[ScenarioSpec]:
        """Build the named set's spec list."""
        return self.entry(name).build(**params)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RegistryEntry]:
        for name in self.names():
            yield self._entries[name]


#: The default registry the CLI and validation harness use.
REGISTRY = ScenarioRegistry()
