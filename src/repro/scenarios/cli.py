"""``runner scenarios ...``: the scenario registry's command line.

Subcommands::

    scenarios list [--tag TAG] [--points]
    scenarios run  (NAME | --file PACK.json) [--param k=v ...] [--jobs N]
                   [--chunk-size K] [--no-cache] [--cache-stats]
    scenarios pack NAME [--param k=v ...] [--out FILE]
    scenarios validate [--points N] [--jobs N] [--report FILE] ...

``list`` shows what is registered; ``run`` expands a registered set (or
a pack file written by ``pack``) into simulation points and executes
them through the cached executor; ``pack`` serializes a set to JSON so
a sweep is reviewable and replayable as data; ``validate`` runs the
validation harness (:mod:`repro.scenarios.validation`) over the
composed validation pack and exits non-zero on any contract violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.exec import Executor, ResultCache
from repro.reporting import emit_cache_stats
from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import ScenarioSpec, dump_specs, load_specs
from repro.util.errors import ReproError


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    """``k=v`` strings to a kwargs dict (values JSON-decoded when valid)."""
    params: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _executor(args: argparse.Namespace, backend: str = "event") -> Executor:
    return Executor(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
        chunk_size=args.chunk_size,
        backend=backend,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    for entry in REGISTRY:
        if args.tag and args.tag not in entry.tags:
            continue
        line = f"{entry.name:28s} [{', '.join(entry.tags)}] {entry.description}"
        if args.points:
            specs = entry.build()
            total = sum(spec.points for spec in specs)
            line += f" ({len(specs)} scenarios, {total} points)"
        print(line)
    return 0


def _load_set(args: argparse.Namespace) -> list[ScenarioSpec]:
    if args.file:
        return load_specs(Path(args.file).read_text())
    return REGISTRY.build(args.name, **_parse_params(args.param))


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _load_set(args)
    # One executor per backend the pack asks for (specs declare theirs;
    # both share the default cache, whose keys already separate them).
    executors: dict[str, Executor] = {}
    total = 0
    for spec in specs:
        executor = executors.get(spec.backend)
        if executor is None:
            executor = executors[spec.backend] = _executor(args, spec.backend)
        tasks = spec.tasks()
        results = executor.run(tasks)
        total += len(tasks)
        suffix = "" if spec.backend == "event" else f", backend={spec.backend}"
        print(f"{spec.name}: {len(tasks)} point(s) [{spec.kind}{suffix}]")
        for task, result in zip(tasks, results):
            payload = json.dumps(task.encode(result), sort_keys=True)
            print(f"  {task.key}: {payload}")
    print(f"[{total} point(s) across {len(specs)} scenario(s)]")
    batch = executors.get("batch")
    if batch is not None:
        print(f"[{batch.batch_report.summary()}]")
    if args.cache_stats:
        for executor in executors.values():
            emit_cache_stats(executor.stats)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    specs = REGISTRY.build(args.name, **_parse_params(args.param))
    text = dump_specs(specs)
    if args.out:
        Path(args.out).write_text(text)
        total = sum(spec.points for spec in specs)
        print(f"[{len(specs)} scenario(s), {total} point(s) -> {args.out}]")
    else:
        print(text)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.scenarios.packs import validation_pack
    from repro.scenarios.validation import run_validation

    specs = validation_pack(min_points=args.points)
    cache = None
    if args.cache_dir:
        cache = ResultCache(root=Path(args.cache_dir))
    max_bytes = (
        None if args.max_cache_mb is None else int(args.max_cache_mb * 1024 * 1024)
    )
    report = run_validation(
        specs,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache=cache,
        max_cache_bytes=max_bytes,
        waves=args.waves,
        recheck_stride=args.stride,
        progress=lambda text: print(f"[{text}]", file=sys.stderr),
    )
    print(report.render())
    if args.report:
        destination = report.write(args.report)
        print(f"[report written to {destination}]")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="runner scenarios", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered scenario sets")
    p_list.add_argument("--tag", help="only sets carrying this tag")
    p_list.add_argument(
        "--points",
        action="store_true",
        help="also build each set and count scenarios/points",
    )
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="expand and execute a scenario set")
    p_run.add_argument("name", nargs="?", help="registered set name")
    p_run.add_argument(
        "--file", metavar="PACK", help="run a pack file instead of a set name"
    )
    p_run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="K=V",
        help="factory keyword argument (repeatable; value parsed as JSON)",
    )
    p_run.add_argument("--jobs", type=int, default=1, metavar="N")
    p_run.add_argument("--chunk-size", type=int, default=None, metavar="K")
    p_run.add_argument("--no-cache", action="store_true")
    p_run.add_argument("--cache-stats", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_pack = sub.add_parser("pack", help="serialize a scenario set to JSON")
    p_pack.add_argument("name", help="registered set name")
    p_pack.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="K=V",
        help="factory keyword argument (repeatable; value parsed as JSON)",
    )
    p_pack.add_argument("--out", metavar="FILE", help="write here (default: stdout)")
    p_pack.set_defaults(func=_cmd_pack)

    p_val = sub.add_parser(
        "validate", help="run the validation sweep over the composed pack"
    )
    p_val.add_argument(
        "--points",
        type=int,
        default=10_000,
        metavar="N",
        help="minimum simulation points in the sweep (default: 10000)",
    )
    p_val.add_argument("--jobs", type=int, default=1, metavar="N")
    p_val.add_argument("--chunk-size", type=int, default=None, metavar="K")
    p_val.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p_val.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        metavar="MB",
        help="prune the cache to this bound between waves (forces "
        "evictions; default: $REPRO_CACHE_MAX_MB or no bound)",
    )
    p_val.add_argument("--waves", type=int, default=4, metavar="W")
    p_val.add_argument(
        "--stride",
        type=int,
        default=7,
        metavar="S",
        help="serially recheck every Sth point (default: 7)",
    )
    p_val.add_argument(
        "--report", metavar="FILE", help="write the JSON report here"
    )
    p_val.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    if args.command == "run" and bool(args.name) == bool(args.file):
        parser.error("run takes exactly one of NAME or --file")
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
