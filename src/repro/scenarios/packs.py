"""Generated scenario packs: machine-made experiment grids.

Where :mod:`repro.scenarios.paper` transcribes the paper's six
artifacts, this module *generates* families the paper never ran —
weak/strong scaling grids, heterogeneous gear menus, checkpoint-heavy
I/O mixes, communication-pathological kernels — in the spirit of large
comparative DVFS studies (COUNTDOWN sweeps policy x workload x node
grids rather than single figures).

Every generator is deterministic: the same parameters produce the same
specs in the same order, so a pack is as cacheable and fingerprintable
as a hand-written experiment.  :func:`validation_pack` composes the
generators into the large sweep the validation harness
(:mod:`repro.scenarios.validation`) soaks the executor stack with.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import (
    KIND_GEAR_SWEEP,
    KIND_MEASUREMENT,
    WORKLOADS,
    ClusterRef,
    PolicyRef,
    ScenarioSpec,
    WorkloadRef,
)

#: The six gears of the paper's Athlon cluster.
ALL_GEARS = (1, 2, 3, 4, 5, 6)

#: NAS codes used by the generated grids (the full eight).
NAS_NAMES = ("EP", "BT", "LU", "MG", "SP", "CG", "FT", "IS")

#: Steady-state fast-forward knobs the equivalence twins run under.
#: ``max_period=2`` keeps the detection window short enough that the
#: ~20-iteration pack workloads actually engage (jumps need about
#: ``2 * max_period + 3`` iterations of history).
FF_KNOBS: Mapping[str, int] = {"max_period": 2}

#: Tag marking plain specs the validation harness builds fast-forward
#: equivalence twins for.
FF_ELIGIBLE_TAG = "ff-eligible"

#: Tag marking plain specs the validation harness re-runs through the
#: record/replay batch backend (:mod:`repro.sim.batch`) and checks for
#: 1e-9 time/energy agreement with exact event simulation.
BATCH_ELIGIBLE_TAG = "batch-eligible"


def scale_for_iterations(kind: str, iterations: int) -> float:
    """The ``scale`` putting a workload at an exact iteration count.

    Workload constructors round ``BASE_ITERATIONS * scale`` (with a
    floor of 3), so two nearby scales can collapse onto the same
    iteration count — and hence the same content fingerprint.  Grids
    parameterized by *iterations* sidestep that: every grid point is a
    genuinely distinct simulation.
    """
    base = WORKLOADS[kind].BASE_ITERATIONS
    return iterations / base


def unique_specs(specs: Iterable[ScenarioSpec]) -> list[ScenarioSpec]:
    """Drop specs whose identity fingerprint was already seen (keep first)."""
    seen: set[str] = set()
    out: list[ScenarioSpec] = []
    for spec in specs:
        print_ = spec.fingerprint()
        if print_ in seen:
            continue
        seen.add(print_)
        out.append(spec)
    return out


def total_points(specs: Iterable[ScenarioSpec]) -> int:
    """Simulation points the specs expand to, without expanding."""
    return sum(spec.points for spec in specs)


def _valid_nodes(ref: WorkloadRef, counts: Sequence[int], max_nodes: int) -> tuple[int, ...]:
    allowed = set(ref.build().valid_node_counts(max_nodes))
    return tuple(n for n in counts if n in allowed)


@REGISTRY.register("strong-scaling", tags=("pack",))
def strong_scaling_pack(
    *,
    iterations: Sequence[int] = (3, 5),
    classes: Sequence[str] = ("B",),
    node_counts: Sequence[int] = (1, 2, 4, 8, 9),
    gears: Sequence[int] = ALL_GEARS,
) -> list[ScenarioSpec]:
    """Fixed problem, growing node counts: the classic scaling grid.

    One measurement scenario per (workload, class, iteration count),
    expanding to a point per valid node count per gear.
    """
    specs = []
    for name in NAS_NAMES:
        for cls_ in classes:
            for iters in iterations:
                scale = scale_for_iterations(name, iters)
                ref = WorkloadRef(
                    name, (("problem_class", cls_), ("scale", scale))
                )
                nodes = _valid_nodes(ref, node_counts, 10)
                specs.append(
                    ScenarioSpec(
                        name=f"strong/{name}-{cls_}-i{iters}",
                        kind=KIND_MEASUREMENT,
                        cluster=ClusterRef(),
                        workload=ref,
                        nodes=nodes,
                        gears=tuple(gears),
                        tags=("pack", "strong-scaling"),
                        description=(
                            f"{name} class {cls_}, {iters} iterations, "
                            f"nodes {nodes}"
                        ),
                    )
                )
    for name in ("Jacobi", "Synthetic"):
        for iters in iterations:
            scale = scale_for_iterations(name, iters)
            specs.append(
                ScenarioSpec(
                    name=f"strong/{name}-i{iters}",
                    kind=KIND_MEASUREMENT,
                    cluster=ClusterRef(),
                    workload=WorkloadRef(name, (("scale", scale),)),
                    nodes=tuple(n for n in node_counts if n <= 10),
                    gears=tuple(gears),
                    tags=("pack", "strong-scaling"),
                    description=f"{name}, {iters} iterations",
                )
            )
    return specs


@REGISTRY.register("weak-scaling", tags=("pack",))
def weak_scaling_pack(
    *,
    iterations: Sequence[int] = (4,),
    node_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    base_nodes: int = 2,
    gears: Sequence[int] = ALL_GEARS,
) -> list[ScenarioSpec]:
    """Per-node work held constant as nodes grow (Gustafson's regime).

    Jacobi's ``work_multiplier`` grows the per-iteration grid with the
    node count, so every point does the same per-rank work; the
    energy-time question becomes "what does a bigger *machine* cost",
    not "what does a smaller *share* cost".
    """
    specs = []
    for iters in iterations:
        scale = scale_for_iterations("Jacobi", iters)
        for n in node_counts:
            multiplier = n / base_nodes
            specs.append(
                ScenarioSpec(
                    name=f"weak/Jacobi-n{n}-i{iters}",
                    kind=KIND_MEASUREMENT,
                    cluster=ClusterRef(),
                    workload=WorkloadRef(
                        "Jacobi",
                        (("scale", scale), ("work_multiplier", multiplier)),
                    ),
                    nodes=(n,),
                    gears=tuple(gears),
                    tags=("pack", "weak-scaling"),
                    description=(
                        f"Jacobi on {n} nodes, work x{multiplier:g} "
                        f"({iters} iterations)"
                    ),
                )
            )
    return specs


@REGISTRY.register("heterogeneous-gear", tags=("pack",))
def heterogeneous_gear_pack(
    *,
    iterations: Sequence[int] = (3,),
    gear_menus: Sequence[Sequence[int]] = ((1, 3, 5), (2, 4, 6), (1, 6), (4, 5, 6)),
    switch_latencies: Sequence[float] = (0.0, 100e-6),
    node_counts: Sequence[int] = (2, 4, 8),
) -> list[ScenarioSpec]:
    """Restricted gear menus and non-zero DVFS switch costs.

    Models clusters whose nodes expose only a subset of the gear table
    (deep gears fused off, or a conservative site policy) and
    PowerNow!-class transition stalls — curve shapes under a sparse
    menu are exactly what a gear-advisor must interpolate across.
    """
    specs = []
    for name in ("EP", "CG", "Jacobi", "Synthetic"):
        for iters in iterations:
            scale = scale_for_iterations(name, iters)
            ref = WorkloadRef(name, (("scale", scale),))
            nodes = _valid_nodes(ref, node_counts, 10)
            for menu in gear_menus:
                for latency in switch_latencies:
                    menu_tag = "".join(str(g) for g in menu)
                    specs.append(
                        ScenarioSpec(
                            name=(
                                f"hetgear/{name}-g{menu_tag}"
                                f"-l{round(latency * 1e6)}-i{iters}"
                            ),
                            kind=KIND_GEAR_SWEEP,
                            cluster=ClusterRef(gear_switch_latency=latency),
                            workload=ref,
                            nodes=nodes,
                            gears=tuple(menu),
                            tags=("pack", "heterogeneous-gear"),
                            description=(
                                f"{name} on gear menu {tuple(menu)}, "
                                f"switch {latency * 1e6:g} us"
                            ),
                        )
                    )
    return specs


@REGISTRY.register("checkpoint-heavy", tags=("pack",))
def checkpoint_heavy_pack(
    *,
    iterations: Sequence[int] = (6,),
    checkpoint_periods: Sequence[int] = (2, 3),
    checkpoint_volumes: Sequence[int] = (16_000_000, 64_000_000),
    disk_speeds: Sequence[int] = (1, 3, 5),
    node_counts: Sequence[int] = (2, 4),
    gears: Sequence[int] = (1, 3, 6),
) -> list[ScenarioSpec]:
    """I/O-burst workloads on the multi-speed DRPM disk.

    The paper's "scaling down other components, such as the disk"
    future-work axis: stencil compute punctuated by blocking checkpoint
    writes, across checkpoint period/volume and spindle speed.
    """
    specs = []
    for iters in iterations:
        scale = scale_for_iterations("CheckpointedStencil", iters)
        for every in checkpoint_periods:
            for volume in checkpoint_volumes:
                for speed in disk_speeds:
                    specs.append(
                        ScenarioSpec(
                            name=(
                                f"ckpt/every{every}-v{volume // 1_000_000}M"
                                f"-d{speed}-i{iters}"
                            ),
                            kind=KIND_MEASUREMENT,
                            cluster=ClusterRef(disk="drpm"),
                            workload=WorkloadRef(
                                "CheckpointedStencil",
                                (
                                    ("checkpoint_bytes", volume),
                                    ("checkpoint_every", every),
                                    ("disk_speed", speed),
                                    ("scale", scale),
                                ),
                            ),
                            nodes=tuple(node_counts),
                            gears=tuple(gears),
                            tags=("pack", "checkpoint-heavy"),
                            description=(
                                f"checkpoint every {every} iterations, "
                                f"{volume // 1_000_000} MB, disk speed {speed}"
                            ),
                        )
                    )
    return specs


@REGISTRY.register("communication-pathological", tags=("pack",))
def communication_pathological_pack(
    *,
    iterations: Sequence[int] = (3,),
    halo_bytes: Sequence[int] = (262_144, 1_048_576, 4_194_304),
    node_counts: Sequence[int] = (2, 4, 8),
    gears: Sequence[int] = ALL_GEARS,
) -> list[ScenarioSpec]:
    """Communication-dominated kernels: the anti-case-3 stress set.

    Synthetic with the ring halo cranked to megabytes, and Jacobi with
    the per-iteration grid shrunk under it (``work_multiplier < 1``),
    drown computation in wire time — the regime where lower gears are
    nearly free and the network, not the CPU, sets the energy floor.
    """
    specs = []
    for iters in iterations:
        scale = scale_for_iterations("Synthetic", iters)
        for halo in halo_bytes:
            specs.append(
                ScenarioSpec(
                    name=f"commpath/Synthetic-h{halo // 1024}K-i{iters}",
                    kind=KIND_MEASUREMENT,
                    cluster=ClusterRef(),
                    workload=WorkloadRef(
                        "Synthetic",
                        (("halo_bytes", halo), ("scale", scale)),
                    ),
                    nodes=tuple(node_counts),
                    gears=tuple(gears),
                    tags=("pack", "communication-pathological"),
                    description=f"Synthetic, {halo // 1024} KiB ring halo",
                )
            )
        jacobi_scale = scale_for_iterations("Jacobi", iters)
        for multiplier in (0.125, 0.25):
            specs.append(
                ScenarioSpec(
                    name=f"commpath/Jacobi-w{multiplier:g}-i{iters}",
                    kind=KIND_MEASUREMENT,
                    cluster=ClusterRef(),
                    workload=WorkloadRef(
                        "Jacobi",
                        (
                            ("scale", jacobi_scale),
                            ("work_multiplier", multiplier),
                        ),
                    ),
                    nodes=tuple(node_counts),
                    gears=tuple(gears),
                    tags=("pack", "communication-pathological"),
                    description=(
                        f"Jacobi with per-iteration work x{multiplier:g} "
                        "(halo volume unchanged)"
                    ),
                )
            )
    return specs


@REGISTRY.register("fast-forward-eligible", tags=("pack",))
def fastforward_pack(
    *,
    iterations: Sequence[int] = (20,),
    gears: Sequence[int] = (1, 4),
) -> list[ScenarioSpec]:
    """Long steady-state runs the fast-forward layer can macro-step.

    These specs run *exact* (no fast-forward); the validation harness
    derives a ``+ff`` twin from each (:data:`FF_KNOBS`) and asserts the
    twins agree to 1e-9 relative.  Periods: Jacobi/Synthetic/EP settle
    into period-1 limit cycles; CG on ``n`` nodes needs period
    ``n - 1``, so it runs on 2 nodes to stay inside ``max_period=2``.

    The same specs double as the batch backend's equivalence set
    (:data:`BATCH_ELIGIBLE_TAG`): their multi-gear measurement grids are
    exactly what :mod:`repro.exec.batch_sweep` folds into shared-tape
    groups, so validation sweeps exercise recording, grouping and replay
    against the exact baseline too.
    """
    grids = {
        "Jacobi": (1, 2, 4),
        "Synthetic": (2, 4),
        "EP": (2, 4),
        "CG": (2,),
    }
    specs = []
    for iters in iterations:
        for name, nodes in grids.items():
            scale = scale_for_iterations(name, iters)
            specs.append(
                ScenarioSpec(
                    name=f"ff/{name}-i{iters}",
                    kind=KIND_MEASUREMENT,
                    cluster=ClusterRef(),
                    workload=WorkloadRef(name, (("scale", scale),)),
                    nodes=nodes,
                    gears=tuple(gears),
                    tags=("pack", FF_ELIGIBLE_TAG, BATCH_ELIGIBLE_TAG),
                    description=f"{name}, {iters} steady iterations",
                )
            )
    return specs


@REGISTRY.register("policy-zoo", tags=("pack", "policy"))
def policy_zoo_pack(
    *,
    iterations: Sequence[int] = (5,),
    node_counts: Sequence[int] = (2, 4),
) -> list[ScenarioSpec]:
    """Policy-managed measurement scenarios: one per zoo family.

    Covers every registered policy family at least once — the static
    baseline through :class:`~repro.policy.base.StaticPolicy` (a
    distinct cache key from a plain gear-1 measurement: the run goes
    through :class:`~repro.policy.comm.PolicyComm`), the idle-harvesting
    pair, the trial-slack adaptive policy, a hysteretic slack-threshold
    variant, and two power-budget caps (one generous, one that forces
    the arbiter to ration upgrades on the larger node count).
    """
    policies: list[tuple[str, PolicyRef, tuple[int, ...]]] = [
        ("static-g2", PolicyRef("static", (("gear", 2),)), tuple(node_counts)),
        ("idle-low", PolicyRef("idle-low"), tuple(node_counts)),
        ("trial-slack", PolicyRef("trial-slack"), tuple(node_counts)),
        (
            "slack-threshold",
            PolicyRef("slack-threshold", (("threshold_s", 1e-4),)),
            tuple(node_counts),
        ),
        (
            "slack-threshold-hyst",
            PolicyRef(
                "slack-threshold",
                (("hysteresis", 3), ("threshold_s", 1e-4)),
            ),
            tuple(node_counts),
        ),
        (
            "power-budget-wide",
            PolicyRef("power-budget", (("cap_w", 620.0),)),
            tuple(node_counts),
        ),
        (
            "power-budget-tight",
            PolicyRef("power-budget", (("cap_w", 450.0),)),
            tuple(n for n in node_counts if n >= 4) or (max(node_counts),),
        ),
    ]
    specs = []
    for name in ("Jacobi", "CG"):
        for iters in iterations:
            scale = scale_for_iterations(name, iters)
            ref = WorkloadRef(name, (("scale", scale),))
            for label, policy, nodes in policies:
                nodes = _valid_nodes(ref, nodes, 10)
                if not nodes:
                    continue
                specs.append(
                    ScenarioSpec(
                        name=f"zoo/{name}-{label}-i{iters}",
                        kind=KIND_MEASUREMENT,
                        cluster=ClusterRef(),
                        workload=ref,
                        nodes=nodes,
                        policy=policy,
                        tags=("pack", "policy"),
                        description=(
                            f"{name} under {policy.kind} "
                            f"{dict(policy.params)}, {iters} iterations"
                        ),
                    )
                )
    return specs


@REGISTRY.register("validation", tags=("pack", "validation"))
def validation_pack(
    *, min_points: int = 10_000, max_level: int = 10
) -> list[ScenarioSpec]:
    """The composed validation sweep: every pack, grown to a point target.

    Grids grow level by level (more iteration counts, more NAS classes)
    until the deduplicated spec set expands to at least ``min_points``
    simulation points, then the spec list is trimmed to the first
    prefix reaching the target — so requesting 200 points yields a
    smoke-sized subset of exactly the same family the 10k sweep runs,
    and the construction is deterministic end to end.

    The fast-forward-eligible specs always lead the list: the
    equivalence phase needs them present at any size.
    """
    classes_by_level = ("B", "A", "C", "W", "S")
    specs: list[ScenarioSpec] = []
    for level in range(1, max_level + 1):
        iteration_grid = tuple(range(3, 3 + 2 * level))
        classes = classes_by_level[: min(1 + level // 2, len(classes_by_level))]
        specs = unique_specs(
            fastforward_pack()
            + policy_zoo_pack(iterations=iteration_grid[:1])
            + strong_scaling_pack(iterations=iteration_grid, classes=classes)
            + weak_scaling_pack(iterations=iteration_grid[:2])
            + heterogeneous_gear_pack(iterations=iteration_grid[:3])
            + checkpoint_heavy_pack(iterations=iteration_grid[:2])
            + communication_pathological_pack(iterations=iteration_grid[:2])
        )
        if total_points(specs) >= min_points:
            break
    trimmed: list[ScenarioSpec] = []
    count = 0
    for spec in specs:
        trimmed.append(spec)
        count += spec.points
        if count >= min_points:
            break
    return trimmed
