"""The paper's artifacts (figures 1-5, table 1) as scenario specs.

Each factory returns exactly the simulation points the corresponding
experiment module used to hand-construct, in the same order — the
golden-artifact suite proves the port byte-identical.  The experiment
modules in :mod:`repro.experiments` consume these factories; the
registry entries make the same sets runnable from the CLI
(``runner scenarios run figure2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import (
    KIND_CALIBRATION,
    KIND_GEAR_SWEEP,
    KIND_MEASUREMENT,
    ClusterRef,
    ScenarioSpec,
    WorkloadRef,
)
from repro.workloads.nas import NAS_PAPER_SUITE

#: Figure 2's node counts per code (paper layout; BT/SP need squares).
FIGURE2_NODE_COUNTS: dict[str, tuple[int, ...]] = {
    "EP": (1, 2, 4, 8),
    "LU": (1, 2, 4, 8),
    "MG": (1, 2, 4, 8),
    "CG": (1, 2, 4, 8),
    "BT": (1, 4, 9),
    "SP": (1, 4, 9),
}

#: Figure 3's Jacobi node counts (1 is the speedup reference).
FIGURE3_NODE_COUNTS = (1, 2, 4, 6, 8, 10)

#: Figure 4's synthetic-benchmark node counts.
FIGURE4_NODE_COUNTS = (1, 2, 4, 8)

#: Figure 5: node counts measured directly / extrapolated to.
FIGURE5_MEASURED_COUNTS = (1, 2, 4, 8, 9)
FIGURE5_EXTRAPOLATED_COUNTS = (16, 25, 32)
FIGURE5_TRUTH_MAX_NODES = max(FIGURE5_EXTRAPOLATED_COUNTS)


def _nas(name: str, scale: float) -> WorkloadRef:
    return WorkloadRef(name, (("scale", scale),))


@REGISTRY.register("figure1", tags=("paper", "figure"))
def figure1_scenarios(*, scale: float = 1.0) -> list[ScenarioSpec]:
    """Six NAS codes on one node, all gears (Figure 1)."""
    return [
        ScenarioSpec(
            name=f"figure1/{name}",
            kind=KIND_GEAR_SWEEP,
            cluster=ClusterRef(),
            workload=_nas(name, scale),
            nodes=(1,),
            tags=("paper", "figure1"),
            description=f"{name} single-node energy-time curve",
        )
        for name in NAS_PAPER_SUITE
    ]


@REGISTRY.register("figure2", tags=("paper", "figure"))
def figure2_scenarios(*, scale: float = 1.0) -> list[ScenarioSpec]:
    """Six NAS codes on multiple node counts (Figure 2)."""
    return [
        ScenarioSpec(
            name=f"figure2/{name}",
            kind=KIND_GEAR_SWEEP,
            cluster=ClusterRef(),
            workload=_nas(name, scale),
            nodes=FIGURE2_NODE_COUNTS[name],
            tags=("paper", "figure2"),
            description=f"{name} curves on {FIGURE2_NODE_COUNTS[name]} nodes",
        )
        for name in NAS_PAPER_SUITE
    ]


@REGISTRY.register("figure3", tags=("paper", "figure"))
def figure3_scenarios(*, scale: float = 1.0) -> list[ScenarioSpec]:
    """Jacobi iteration on 1-10 nodes (Figure 3)."""
    return [
        ScenarioSpec(
            name="figure3/Jacobi",
            kind=KIND_GEAR_SWEEP,
            cluster=ClusterRef(),
            workload=WorkloadRef("Jacobi", (("scale", scale),)),
            nodes=FIGURE3_NODE_COUNTS,
            tags=("paper", "figure3"),
            description="Jacobi curve family, 2-10 nodes plus reference",
        )
    ]


@REGISTRY.register("figure4", tags=("paper", "figure"))
def figure4_scenarios(*, scale: float = 1.0) -> list[ScenarioSpec]:
    """The synthetic high-memory-pressure benchmark (Figure 4)."""
    return [
        ScenarioSpec(
            name="figure4/Synthetic",
            kind=KIND_GEAR_SWEEP,
            cluster=ClusterRef(),
            workload=WorkloadRef("Synthetic", (("scale", scale),)),
            nodes=FIGURE4_NODE_COUNTS,
            tags=("paper", "figure4"),
            description="synthetic benchmark curve family",
        )
    ]


@REGISTRY.register("table1", tags=("paper", "table"))
def table1_scenarios(*, scale: float = 1.0) -> list[ScenarioSpec]:
    """UPM and energy-time slopes on one node (Table 1)."""
    sweeps = [
        ScenarioSpec(
            name=f"table1/{name}/slopes",
            kind=KIND_GEAR_SWEEP,
            cluster=ClusterRef(),
            workload=_nas(name, scale),
            nodes=(1,),
            gears=(1, 2, 3),
            tags=("paper", "table1"),
            description=f"{name} gears 1-3 for the slope columns",
        )
        for name in NAS_PAPER_SUITE
    ]
    measurements = [
        ScenarioSpec(
            name=f"table1/{name}/upm",
            kind=KIND_MEASUREMENT,
            cluster=ClusterRef(),
            workload=_nas(name, scale),
            nodes=(1,),
            tags=("paper", "table1"),
            description=f"{name} gear-1 run for the UPM column",
        )
        for name in NAS_PAPER_SUITE
    ]
    return sweeps + measurements


@dataclass(frozen=True)
class Figure5Plan:
    """One Figure 5 panel's scenario breakdown.

    Attributes:
        workload: benchmark name.
        measured: node counts measured directly (validity-filtered).
        targets: node counts the model extrapolates to.
        measure: the fastest-gear trace-measurement scenario.
        calibrate: the single-node calibration scenario.
        sweep: the measured gear-sweep scenario.
        truth: direct simulation at the extrapolated sizes, or ``None``
            when ground-truth validation is off.
    """

    workload: str
    measured: tuple[int, ...]
    targets: tuple[int, ...]
    measure: ScenarioSpec
    calibrate: ScenarioSpec
    sweep: ScenarioSpec
    truth: ScenarioSpec | None

    @property
    def specs(self) -> list[ScenarioSpec]:
        """The panel's scenarios in task-expansion order."""
        out = [self.measure, self.calibrate, self.sweep]
        if self.truth is not None:
            out.append(self.truth)
        return out


def figure5_plans(
    *,
    scale: float = 1.0,
    validate: bool = False,
    measure_max_nodes: int = 10,
) -> list[Figure5Plan]:
    """Per-workload Figure 5 plans (specs plus the node-count grids).

    Args:
        scale: workload scale.
        validate: also include ground-truth sweeps at the extrapolated
            node counts (simulation can; the paper's cluster could not).
        measure_max_nodes: size of the measurement cluster (matters when
            the experiment overrides the paper's ten-node machine).
    """
    plans = []
    for name in NAS_PAPER_SUITE:
        ref = _nas(name, scale)
        workload = ref.build()
        measured = tuple(
            n
            for n in FIGURE5_MEASURED_COUNTS
            if n in set(workload.valid_node_counts(measure_max_nodes))
        )
        targets = tuple(
            n
            for n in FIGURE5_EXTRAPOLATED_COUNTS
            if n in set(workload.valid_node_counts(FIGURE5_TRUTH_MAX_NODES))
        )
        cluster = ClusterRef(max_nodes=measure_max_nodes)
        truth = None
        if validate:
            truth = ScenarioSpec(
                name=f"figure5/{name}/truth",
                kind=KIND_GEAR_SWEEP,
                cluster=ClusterRef(max_nodes=FIGURE5_TRUTH_MAX_NODES),
                workload=ref,
                nodes=targets,
                tags=("paper", "figure5", "ground-truth"),
                description=f"{name} simulated at the extrapolated sizes",
            )
        plans.append(
            Figure5Plan(
                workload=name,
                measured=measured,
                targets=targets,
                measure=ScenarioSpec(
                    name=f"figure5/{name}/measure",
                    kind=KIND_MEASUREMENT,
                    cluster=cluster,
                    workload=ref,
                    nodes=measured,
                    tags=("paper", "figure5"),
                    description=f"{name} fastest-gear traces (model step 1)",
                ),
                calibrate=ScenarioSpec(
                    name=f"figure5/{name}/calibrate",
                    kind=KIND_CALIBRATION,
                    cluster=cluster,
                    workload=ref,
                    nodes=(),
                    tags=("paper", "figure5"),
                    description=f"{name} per-gear calibration (model step 4)",
                ),
                sweep=ScenarioSpec(
                    name=f"figure5/{name}/sweep",
                    kind=KIND_GEAR_SWEEP,
                    cluster=cluster,
                    workload=ref,
                    nodes=measured,
                    tags=("paper", "figure5"),
                    description=f"{name} measured energy-time curves",
                ),
                truth=truth,
            )
        )
    return plans


@REGISTRY.register("figure5", tags=("paper", "figure"))
def figure5_scenarios(
    *, scale: float = 1.0, validate: bool = False
) -> list[ScenarioSpec]:
    """Model-extrapolated curves up to 32 nodes (Figure 5)."""
    return [
        spec for plan in figure5_plans(scale=scale, validate=validate)
        for spec in plan.specs
    ]
