"""Declarative scenario specs: serializable experiment descriptions.

A :class:`ScenarioSpec` names everything one experiment needs — which
cluster, which workload at which size, which node and gear grids, what
kind of runs (gear sweeps, single measurements, calibrations), and the
fast-forward settings — as plain data.  From a spec the harness can

- **expand** the concrete :class:`~repro.exec.tasks.SimTask` points
  (:meth:`ScenarioSpec.tasks`),
- **serialize** to/from JSON (:meth:`ScenarioSpec.to_dict` /
  :meth:`ScenarioSpec.from_dict` — a round-trip is exact), and
- **fingerprint** its identity (:meth:`ScenarioSpec.fingerprint`) with
  the same canonical encoding (:mod:`repro.exec.fingerprint`) the
  result cache keys use: two specs share a fingerprint exactly when
  they expand to simulation points with identical cache keys.

Metadata (``name``, ``tags``, ``description``) is deliberately excluded
from the fingerprint — renaming a scenario must not re-simulate it —
but the name rides along on every expanded task so executor failures
and cache entries are attributable to the scenario that produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.cluster.cluster import ClusterSpec
from repro.cluster.machines import athlon_cluster, reference_cluster
from repro.exec.fingerprint import fingerprint, jsonable
from repro.exec.tasks import (
    CalibrationTask,
    GearSweepTask,
    MeasurementTask,
    PolicyMeasurementTask,
    SimTask,
)
from repro.policy.base import GearPolicy
from repro.policy.registry import POLICIES, build_policy
from repro.util.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.checkpointed import CheckpointedStencil
from repro.workloads.jacobi import Jacobi
from repro.workloads.nas import BT, CG, EP, FT, IS, LU, MG, SP
from repro.workloads.synthetic import SyntheticMemoryPressure

#: Serialization format version (bumped only on incompatible changes).
SPEC_VERSION = 1

#: Run kinds a scenario can request.
KIND_GEAR_SWEEP = "gear_sweep"
KIND_MEASUREMENT = "measurement"
KIND_CALIBRATION = "calibration"
KINDS = (KIND_GEAR_SWEEP, KIND_MEASUREMENT, KIND_CALIBRATION)

#: Declarative machine names -> cluster factories.
MACHINES = ("athlon", "reference")

#: Declarative workload names -> constructors.  Every constructor takes
#: keyword parameters only (``scale`` plus workload-specific knobs).
WORKLOADS: dict[str, type[Workload]] = {
    "EP": EP,
    "BT": BT,
    "LU": LU,
    "MG": MG,
    "SP": SP,
    "CG": CG,
    "FT": FT,
    "IS": IS,
    "Jacobi": Jacobi,
    "Synthetic": SyntheticMemoryPressure,
    "CheckpointedStencil": CheckpointedStencil,
}

#: Scalar JSON types allowed as workload / fast-forward parameters.
_SCALARS = (str, bool, int, float)


def _pairs(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Normalise a parameter mapping to a key-sorted tuple of pairs."""
    if not params:
        return ()
    for key, value in params.items():
        if not isinstance(key, str):
            raise ConfigurationError(f"parameter names must be strings, got {key!r}")
        if value is not None and not isinstance(value, _SCALARS):
            raise ConfigurationError(
                f"parameter {key}={value!r} is not a JSON scalar"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class ClusterRef:
    """A declarative cluster: stock machine name plus knobs.

    Attributes:
        machine: ``"athlon"`` (the paper's power-scalable cluster) or
            ``"reference"`` (the fixed-frequency Sun cluster).
        max_nodes: installed node count.
        gear_switch_latency: DVFS transition stall, seconds (athlon only).
        disk: ``None`` (disk power folded into base power, the paper's
            setup) or ``"drpm"`` (the five-speed DRPM disk, athlon only).
    """

    machine: str = "athlon"
    max_nodes: int = 10
    gear_switch_latency: float = 0.0
    disk: str | None = None

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; expected one of {MACHINES}"
            )
        if self.max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {self.max_nodes}")
        if self.disk not in (None, "drpm"):
            raise ConfigurationError(f"unknown disk {self.disk!r}")
        if self.machine == "reference" and (self.gear_switch_latency or self.disk):
            raise ConfigurationError(
                "the reference cluster has no DVFS gears or DRPM disk"
            )

    def build(self) -> ClusterSpec:
        """Materialise the concrete :class:`ClusterSpec`."""
        if self.machine == "reference":
            return reference_cluster(self.max_nodes)
        disk = None
        if self.disk == "drpm":
            from repro.cluster.disk import drpm_disk

            disk = drpm_disk()
        return athlon_cluster(
            self.max_nodes,
            gear_switch_latency=self.gear_switch_latency,
            disk=disk,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "machine": self.machine,
            "max_nodes": self.max_nodes,
            "gear_switch_latency": self.gear_switch_latency,
            "disk": self.disk,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterRef":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            machine=data["machine"],
            max_nodes=data["max_nodes"],
            gear_switch_latency=data.get("gear_switch_latency", 0.0),
            disk=data.get("disk"),
        )


@dataclass(frozen=True)
class WorkloadRef:
    """A declarative workload: registered name plus constructor params.

    Attributes:
        kind: a key of :data:`WORKLOADS` (``"EP"`` .. ``"Jacobi"``).
        params: constructor keyword arguments as a key-sorted tuple of
            ``(name, value)`` pairs (scalar JSON values only), so two
            refs built from differently-ordered mappings compare equal.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.kind!r}; expected one of "
                f"{sorted(WORKLOADS)}"
            )
        object.__setattr__(self, "params", _pairs(dict(self.params)))

    def build(self) -> Workload:
        """Instantiate the workload (raises on bad parameters)."""
        try:
            return WORKLOADS[self.kind](**dict(self.params))
        except TypeError as exc:
            raise ConfigurationError(
                f"workload {self.kind} rejected parameters "
                f"{dict(self.params)!r}: {exc}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadRef":
        """Rebuild from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=_pairs(data.get("params")))


@dataclass(frozen=True)
class PolicyRef:
    """A declarative gear policy: registered name plus constructor params.

    Attributes:
        kind: a key of :data:`repro.policy.registry.POLICIES`
            (``"static"``, ``"idle-low"``, ``"trial-slack"``,
            ``"slack-threshold"``, ``"power-budget"``).
        params: constructor keyword arguments as a key-sorted tuple of
            ``(name, value)`` pairs (scalar JSON values only).
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.kind!r}; expected one of "
                f"{sorted(POLICIES)}"
            )
        object.__setattr__(self, "params", _pairs(dict(self.params)))

    def build(self) -> GearPolicy:
        """Instantiate the policy (raises on bad parameters)."""
        return build_policy(self.kind, **dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyRef":
        """Rebuild from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=_pairs(data.get("params")))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: cluster x workload x grids x kind.

    Attributes:
        name: unique scenario name (metadata — see note below).
        kind: :data:`KIND_GEAR_SWEEP` (one energy-time curve per node
            count), :data:`KIND_MEASUREMENT` (one run per node x gear
            grid point), or :data:`KIND_CALIBRATION` (the single-node
            per-gear calibration table).
        cluster: declarative cluster.
        workload: declarative workload.
        nodes: node-count grid, in expansion order.
        gears: gear grid; ``None`` means every cluster gear for sweeps
            and gear 1 for measurements.  Canonicalised at construction
            (measurements store ``(1,)`` for ``None``; calibrations
            ignore both grids and store ``nodes=()``, ``gears=None``),
            so fields that cannot affect the expanded tasks cannot
            affect the fingerprint either.
        fast_forward: steady-state fast-forward knobs as a key-sorted
            pair tuple (:class:`repro.mpi.fastforward.FastForwardConfig`
            keywords), or ``None`` for exact event-by-event simulation.
        policy: optional declarative gear policy.  Only measurement
            scenarios accept one; each node-grid point then expands to a
            :class:`~repro.exec.tasks.PolicyMeasurementTask` (the policy
            manages gears, so the gear grid must be left unset and is
            canonicalised to ``None``).
        backend: simulation backend the scenario asks for — ``"event"``
            (the default, point-by-point event simulation) or
            ``"batch"`` (the record/replay backend of
            :mod:`repro.sim.batch`, which records once per
            workload x node count and replays the whole gear grid).
            Validated at construction; unknown names raise
            :class:`ConfigurationError`.  Identity: batch results cache
            under distinct keys, so the fingerprint moves with it (but
            ``"event"`` specs fingerprint exactly as before the field
            existed).
        tags: free-form labels for registry filtering (metadata).
        description: one-line summary (metadata).

    ``name``, ``tags`` and ``description`` are *metadata*: they are
    excluded from :meth:`identity` and :meth:`fingerprint`, so renaming
    or retagging a scenario never invalidates cached results.  All other
    fields are identity: changing any of them moves the fingerprint and
    the expanded tasks' cache keys.
    """

    name: str
    kind: str
    cluster: ClusterRef = field(default_factory=ClusterRef)
    workload: WorkloadRef = field(default_factory=lambda: WorkloadRef("EP"))
    nodes: tuple[int, ...] = (1,)
    gears: tuple[int, ...] | None = None
    fast_forward: tuple[tuple[str, Any], ...] | None = None
    policy: PolicyRef | None = None
    backend: str = "event"
    tags: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; expected one of {KINDS}"
            )
        from repro.exec.batch_sweep import BACKENDS

        if self.backend not in BACKENDS:
            known = ", ".join(repr(b) for b in BACKENDS)
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {known}"
            )
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        if not self.nodes and self.kind != KIND_CALIBRATION:
            raise ConfigurationError(f"{self.kind} scenarios need a node grid")
        if any(n < 1 for n in self.nodes):
            raise ConfigurationError(f"node counts must be >= 1, got {self.nodes}")
        if self.gears is not None:
            object.__setattr__(self, "gears", tuple(int(g) for g in self.gears))
            if not self.gears or any(g < 1 for g in self.gears):
                raise ConfigurationError(
                    f"gear grid must be non-empty positive, got {self.gears}"
                )
        # Canonicalise fields the kind ignores or defaults, so that the
        # fingerprint <=> cache-key equivalence stays sharp in both
        # directions: a field that cannot change the expanded tasks must
        # not be able to change the fingerprint either.  Calibrations
        # ignore grids entirely; measurements default a missing gear
        # grid to gear 1.
        if self.policy is not None:
            if self.kind != KIND_MEASUREMENT:
                raise ConfigurationError(
                    f"only {KIND_MEASUREMENT} scenarios accept a policy, "
                    f"got kind {self.kind!r}"
                )
            if self.gears is not None:
                raise ConfigurationError(
                    "policy-managed measurements have no gear grid; "
                    "leave gears unset"
                )
            self.policy.build()  # validate the knobs eagerly
        if self.kind == KIND_CALIBRATION:
            object.__setattr__(self, "nodes", ())
            object.__setattr__(self, "gears", None)
        elif self.kind == KIND_MEASUREMENT and self.gears is None:
            # Policy-managed measurements keep gears=None: the policy,
            # not a grid, decides the gears.
            if self.policy is None:
                object.__setattr__(self, "gears", (1,))
        if self.fast_forward is not None:
            object.__setattr__(
                self, "fast_forward", _pairs(dict(self.fast_forward))
            )
            self.fast_forward_config()  # validate the knobs eagerly
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))

    # ------------------------------------------------------------------
    # Expansion

    def fast_forward_config(self):
        """The spec's :class:`FastForwardConfig`, or ``None``."""
        if self.fast_forward is None:
            return None
        from repro.mpi.fastforward import FastForwardConfig

        try:
            return FastForwardConfig(**dict(self.fast_forward))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad fast-forward parameters {dict(self.fast_forward)!r}: {exc}"
            ) from exc

    def tasks(self, cluster: ClusterSpec | None = None) -> list[SimTask]:
        """Expand into concrete simulation points, in grid order.

        Args:
            cluster: optional concrete cluster overriding the spec's
                declarative one (the experiment modules' ``cluster=``
                escape hatch for machines with no declarative name).
        """
        built = cluster if cluster is not None else self.cluster.build()
        workload = self.workload.build()
        ff = self.fast_forward_config()
        if self.kind == KIND_CALIBRATION:
            return [
                CalibrationTask(built, workload, fast_forward=ff, scenario=self.name)
            ]
        if self.kind == KIND_GEAR_SWEEP:
            return [
                GearSweepTask(
                    built,
                    workload,
                    nodes=n,
                    gears=self.gears,
                    fast_forward=ff,
                    scenario=self.name,
                )
                for n in self.nodes
            ]
        if self.policy is not None:
            policy = self.policy.build()
            return [
                PolicyMeasurementTask(
                    built,
                    workload,
                    nodes=n,
                    policy=policy,
                    fast_forward=ff,
                    scenario=self.name,
                )
                for n in self.nodes
            ]
        gears = self.gears or (1,)
        return [
            MeasurementTask(
                built,
                workload,
                nodes=n,
                gear=g,
                fast_forward=ff,
                scenario=self.name,
            )
            for n in self.nodes
            for g in gears
        ]

    @property
    def points(self) -> int:
        """How many simulation points the spec expands to (cheap)."""
        if self.kind == KIND_CALIBRATION:
            return 1
        if self.kind == KIND_GEAR_SWEEP or self.policy is not None:
            return len(self.nodes)
        return len(self.nodes) * len(self.gears or (1,))

    # ------------------------------------------------------------------
    # Identity and serialization

    def identity(self) -> dict[str, Any]:
        """The fingerprinted content (everything but the metadata).

        Built from the *constructed* cluster, workload, and fast-forward
        config — the same canonical state the executor hashes into cache
        keys — not the raw reference parameters.  Workload constructors
        quantize continuous knobs (iteration counts floor at 3, for
        example), so two references with different ``scale`` values can
        build the same workload; hashing the built form keeps the
        fingerprint ⇔ cache-key equivalence exact in both directions.
        """
        ff = self.fast_forward_config()
        identity = {
            "spec_version": SPEC_VERSION,
            "kind": self.kind,
            "cluster": jsonable(self.cluster.build()),
            "workload": jsonable(self.workload.build()),
            "nodes": self.nodes,
            "gears": self.gears,
            "fast_forward": None if ff is None else ff.describe(),
        }
        # Hashed from the *built* policy's canonical knobs — the same
        # structure PolicyMeasurementTask.describe() folds into its
        # cache key — and omitted entirely when unset, so fingerprints
        # of policy-free specs are unchanged from earlier releases.
        if self.policy is not None:
            identity["policy"] = self.policy.build().describe()
        # Same omitted-when-default treatment: batch-backed points cache
        # under keys carrying the "backend": "batch" token (see
        # repro.exec.batch_sweep.batch_cache_key), so the fingerprint
        # must move with the backend — while event specs keep the exact
        # fingerprints they had before the field existed.
        if self.backend != "event":
            identity["backend"] = self.backend
        return identity

    def fingerprint(self) -> str:
        """Content fingerprint of the identity (cache-key compatible).

        Uses the same canonical encoding as
        :func:`repro.exec.fingerprint.fingerprint`, so the guarantee is
        sharp: two specs have equal fingerprints exactly when the task
        lists they expand to have pairwise-equal executor cache keys.
        """
        return fingerprint(self.identity())

    def same_points(self, other: "ScenarioSpec") -> bool:
        """True when both specs expand to identically-keyed points."""
        return self.identity() == other.identity()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "kind": self.kind,
            "cluster": self.cluster.to_dict(),
            "workload": self.workload.to_dict(),
            "nodes": list(self.nodes),
            "gears": None if self.gears is None else list(self.gears),
            "fast_forward": (
                None if self.fast_forward is None else dict(self.fast_forward)
            ),
            "policy": None if self.policy is None else self.policy.to_dict(),
            "backend": self.backend,
            "tags": list(self.tags),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        version = data.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported scenario spec version {version!r} "
                f"(this code reads version {SPEC_VERSION})"
            )
        gears = data.get("gears")
        ff = data.get("fast_forward")
        policy = data.get("policy")
        return cls(
            name=data["name"],
            kind=data["kind"],
            cluster=ClusterRef.from_dict(data["cluster"]),
            workload=WorkloadRef.from_dict(data["workload"]),
            nodes=tuple(data["nodes"]),
            gears=None if gears is None else tuple(gears),
            fast_forward=None if ff is None else _pairs(ff),
            policy=None if policy is None else PolicyRef.from_dict(policy),
            backend=data.get("backend", "event"),
            tags=tuple(data.get("tags", ())),
            description=data.get("description", ""),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    def renamed(self, name: str) -> "ScenarioSpec":
        """The same scenario under a different (metadata) name."""
        return replace(self, name=name)


def dump_specs(specs: list[ScenarioSpec]) -> str:
    """A scenario pack as a JSON document (list of spec mappings)."""
    return json.dumps(
        {"spec_version": SPEC_VERSION, "scenarios": [s.to_dict() for s in specs]},
        indent=2,
        sort_keys=True,
    )


def load_specs(text: str) -> list[ScenarioSpec]:
    """Rebuild a scenario pack written by :func:`dump_specs`."""
    data = json.loads(text)
    if isinstance(data, list):  # bare list form is accepted too
        return [ScenarioSpec.from_dict(item) for item in data]
    return [ScenarioSpec.from_dict(item) for item in data["scenarios"]]


def expand(
    specs: list[ScenarioSpec], cluster: ClusterSpec | None = None
) -> list[SimTask]:
    """Expand several specs into one flat task list, spec-major order."""
    tasks: list[SimTask] = []
    for spec in specs:
        tasks.extend(spec.tasks(cluster=cluster))
    return tasks
