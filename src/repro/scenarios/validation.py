"""The validation sweep: soak the executor stack, prove its contracts.

:func:`run_validation` drives a scenario-spec list through the cached
chunked executor and checks, at sweep scale, the three guarantees the
smaller unit suites check point by point:

1. **Deterministic merge** — a cold, chunked, parallel sweep and a
   serial recheck of sampled points produce byte-identical encoded
   payloads (canonical JSON of ``task.encode(result)``).
2. **Cache-eviction correctness** — the cache is pruned to a byte bound
   between waves, forcing evictions mid-sweep; rechecked points must
   agree whether they come back as cache hits or as recomputations of
   evicted entries.
3. **Fast-forward equivalence** — specs tagged ``ff-eligible`` are
   re-run with steady-state fast-forward enabled and their
   time/energy must match exact simulation to a relative tolerance
   (1e-9 by default), with the macro-stepping demonstrably engaged.
4. **Batch-backend equivalence** — specs tagged ``batch-eligible`` are
   re-run through the record/replay batch backend
   (:mod:`repro.sim.batch` via ``Executor(backend="batch")``) and must
   match exact simulation to the same tolerance, with the grouping
   demonstrably engaged (points actually folded into shared-tape
   groups, fallbacks to the event engine counted and reported).

The result is a :class:`ValidationReport` — JSON-serializable, so the
nightly CI job can archive it as ``VALIDATION_sweep.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.exec.cache import ResultCache
from repro.exec.executor import Executor
from repro.exec.tasks import MeasurementTask, SimTask
from repro.scenarios.packs import BATCH_ELIGIBLE_TAG, FF_ELIGIBLE_TAG, FF_KNOBS
from repro.scenarios.spec import ScenarioSpec, _pairs
from repro.util.errors import ConfigurationError

#: Default relative tolerance for fast-forward equivalence.
FF_RTOL = 1e-9

#: Default relative tolerance for batch-backend equivalence.
BATCH_RTOL = 1e-9


def canonical_payload(task: SimTask, result: Any) -> str:
    """The canonical JSON text of a point's encoded result.

    This is exactly what the cache would store as the entry payload
    (sorted keys), so byte-comparing two of these is the strongest
    equality the stack can express.
    """
    return json.dumps(task.encode(result), sort_keys=True)


def _rel_err(a: float, b: float) -> float:
    """Relative error, safe at zero."""
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


@dataclass(frozen=True)
class Mismatch:
    """One validation failure, attributable to its scenario and point."""

    check: str
    scenario: str
    point: str
    detail: str


@dataclass
class ValidationReport:
    """What a validation sweep ran and what it found.

    ``mismatches`` empty means every contract held; :attr:`ok` also
    demands the sweep exercised what it claims to exercise (evictions
    actually happened when a cache bound was set, fast-forward actually
    skipped iterations when twins ran).
    """

    scenarios: int = 0
    points: int = 0
    waves: int = 0
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_evicted: int = 0
    cache_invalidated: int = 0
    rechecked: int = 0
    recheck_hits: int = 0
    recheck_recomputed: int = 0
    ff_twins: int = 0
    ff_points: int = 0
    ff_skipped_iterations: int = 0
    ff_max_rel_err: float = 0.0
    ff_rtol: float = FF_RTOL
    batch_twins: int = 0
    batch_points: int = 0
    batch_groups: int = 0
    batch_grouped_points: int = 0
    batch_fallback_points: int = 0
    batch_tape_hits: int = 0
    batch_tape_misses: int = 0
    batch_max_rel_err: float = 0.0
    batch_rtol: float = BATCH_RTOL
    cache_bound_bytes: int | None = None
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every contract held *and* was actually exercised."""
        if self.mismatches:
            return False
        if self.cache_bound_bytes is not None and self.cache_evicted == 0:
            return False
        if self.ff_twins and self.ff_skipped_iterations == 0:
            return False
        if self.batch_twins and self.batch_grouped_points == 0:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (``ok`` included for artifact readers)."""
        data = asdict(self)
        data["ok"] = self.ok
        return data

    def write(self, path: str | Path) -> Path:
        """Write the report as an indented JSON document."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"validation: {self.points} points across {self.scenarios} "
            f"scenarios in {self.waves} waves ({self.elapsed_s:.1f}s)",
            f"  cache: {self.cache_hits} hits, {self.cache_misses} misses, "
            f"{self.cache_stores} stores, {self.cache_evicted} evicted",
            f"  recheck: {self.rechecked} points "
            f"({self.recheck_hits} from cache, "
            f"{self.recheck_recomputed} recomputed after eviction)",
            f"  fast-forward: {self.ff_points} points across {self.ff_twins} "
            f"twins, {self.ff_skipped_iterations} iterations skipped, "
            f"max rel err {self.ff_max_rel_err:.3e} (tol {self.ff_rtol:.0e})",
            f"  batch: {self.batch_points} points across {self.batch_twins} "
            f"twins, {self.batch_grouped_points} grouped into "
            f"{self.batch_groups} recordings, {self.batch_fallback_points} "
            f"fell back, tape cache {self.batch_tape_hits} hits / "
            f"{self.batch_tape_misses} misses, "
            f"max rel err {self.batch_max_rel_err:.3e} "
            f"(tol {self.batch_rtol:.0e})",
        ]
        if self.mismatches:
            lines.append(f"  MISMATCHES: {len(self.mismatches)}")
            for m in self.mismatches[:20]:
                lines.append(f"    [{m.check}] {m.scenario} {m.point}: {m.detail}")
            if len(self.mismatches) > 20:
                lines.append(f"    ... and {len(self.mismatches) - 20} more")
        elif not self.ok:
            if self.cache_bound_bytes is not None and self.cache_evicted == 0:
                lines.append(
                    "  NOT EXERCISED: cache bound set but nothing was evicted"
                )
            if self.ff_twins and self.ff_skipped_iterations == 0:
                lines.append(
                    "  NOT EXERCISED: fast-forward twins never skipped ahead"
                )
            if self.batch_twins and self.batch_grouped_points == 0:
                lines.append(
                    "  NOT EXERCISED: batch twins never formed a group"
                )
        else:
            lines.append("  all contracts held")
        return "\n".join(lines)


def _ff_twin(spec: ScenarioSpec, knobs: Mapping[str, Any]) -> ScenarioSpec:
    """The fast-forwarded twin of an exact spec."""
    return replace(
        spec, name=f"{spec.name}+ff", fast_forward=_pairs(dict(knobs))
    )


def run_validation(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    cache: ResultCache | None = None,
    max_cache_bytes: int | None = None,
    waves: int = 4,
    recheck_stride: int = 7,
    ff_knobs: Mapping[str, Any] = FF_KNOBS,
    ff_rtol: float = FF_RTOL,
    batch_rtol: float = BATCH_RTOL,
    progress=None,
) -> ValidationReport:
    """Run the validation sweep over ``specs``; see the module docstring.

    Args:
        specs: the scenario specs to validate (scenario names must be
            unique — :func:`repro.scenarios.packs.validation_pack`
            output qualifies).
        jobs: worker processes for the cold sweep and the twins.
        chunk_size: executor chunk size (None = auto).
        cache: result cache to use; ``None`` builds the default
            (``$REPRO_CACHE_DIR``) — tests pass a tmp-dir cache.
        max_cache_bytes: prune the cache to this bound between waves,
            forcing mid-sweep evictions (``None`` falls back to
            ``$REPRO_CACHE_MAX_MB``; no bound means no forced pruning).
        waves: how many contiguous slices the cold sweep runs in
            (pruning happens at wave boundaries).
        recheck_stride: serially re-verify every Nth point (1 = all).
        ff_knobs: fast-forward settings for the equivalence twins.
        ff_rtol: relative tolerance for twin time/energy agreement.
        batch_rtol: relative tolerance for batch-backend twin agreement.
        progress: optional callable taking one status string per phase
            step (the CLI wires this to stderr).

    Returns:
        The :class:`ValidationReport`.
    """
    if waves < 1:
        raise ConfigurationError(f"waves must be >= 1, got {waves}")
    if recheck_stride < 1:
        raise ConfigurationError(
            f"recheck_stride must be >= 1, got {recheck_stride}"
        )
    if cache is None:
        cache = ResultCache()

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    start = time.perf_counter()
    report = ValidationReport(
        scenarios=len(specs),
        ff_rtol=ff_rtol,
        batch_rtol=batch_rtol,
        cache_bound_bytes=max_cache_bytes,
    )

    # ------------------------------------------------------------------
    # Phase A: cold sweep in waves, pruning the cache at wave boundaries.
    tasks: list[SimTask] = []
    for spec in specs:
        tasks.extend(spec.tasks())
    report.points = len(tasks)
    baseline: list[str] = []
    executor = Executor(jobs=jobs, cache=cache, chunk_size=chunk_size)
    wave_size = max(1, -(-len(tasks) // waves))
    for lo in range(0, len(tasks), wave_size):
        wave = tasks[lo : lo + wave_size]
        report.waves += 1
        say(
            f"wave {report.waves}: {len(wave)} points "
            f"({lo + len(wave)}/{len(tasks)})"
        )
        for task, result in zip(wave, executor.run(wave)):
            baseline.append(canonical_payload(task, result))
        cache.prune(max_bytes=max_cache_bytes)

    # ------------------------------------------------------------------
    # Phase B: serial recheck of sampled points against the pruned cache.
    # A sampled point either hits the cache (decode path) or was evicted
    # and recomputes (run path); both must reproduce the cold sweep's
    # payload byte for byte.
    sample = list(range(0, len(tasks), recheck_stride))
    say(f"recheck: {len(sample)} of {len(tasks)} points, serial")
    serial = Executor(jobs=1, cache=cache)
    hits_before = cache.stats.hits
    for index in sample:
        task = tasks[index]
        (result,) = serial.run([task])
        report.rechecked += 1
        got = canonical_payload(task, result)
        if got != baseline[index]:
            report.mismatches.append(
                Mismatch(
                    check="determinism",
                    scenario=getattr(task, "scenario", None) or "",
                    point=str(task.key),
                    detail=(
                        "serial recheck payload differs from cold "
                        f"parallel sweep ({len(got)} vs "
                        f"{len(baseline[index])} bytes)"
                    ),
                )
            )
    report.recheck_hits = cache.stats.hits - hits_before
    report.recheck_recomputed = report.rechecked - report.recheck_hits

    # ------------------------------------------------------------------
    # Phase C: fast-forward twins of the eligible specs.
    eligible = {s.name for s in specs if FF_ELIGIBLE_TAG in s.tags}
    batch_eligible = {s.name for s in specs if BATCH_ELIGIBLE_TAG in s.tags}
    say(f"fast-forward twins: {len(eligible)} specs")
    exact_tasks_by_name: dict[str, list[SimTask]] = {}
    offset = 0
    for spec in specs:
        count = spec.points
        if spec.name in eligible or spec.name in batch_eligible:
            exact_tasks_by_name[spec.name] = tasks[offset : offset + count]
        offset += count
    for spec in (s for s in specs if s.name in eligible):
        twin = _ff_twin(spec, ff_knobs)
        twin_tasks = twin.tasks()
        report.ff_twins += 1
        report.ff_points += len(twin_tasks)
        twin_results = executor.run(twin_tasks)
        config = getattr(twin_tasks[0], "fast_forward", None)
        if config is not None:
            report.ff_skipped_iterations += config.aggregate.skipped_iterations
        exact_tasks = exact_tasks_by_name[spec.name]
        for exact_task, twin_task, twin_result in zip(
            exact_tasks, twin_tasks, twin_results
        ):
            if not isinstance(twin_task, MeasurementTask):
                report.mismatches.append(
                    Mismatch(
                        check="fast-forward",
                        scenario=spec.name,
                        point=str(twin_task.key),
                        detail=(
                            "ff-eligible specs must be measurement kind, "
                            f"got {type(twin_task).__name__}"
                        ),
                    )
                )
                continue
            (exact_result,) = serial.run([exact_task])
            for quantity in ("time", "energy"):
                err = _rel_err(
                    getattr(exact_result, quantity),
                    getattr(twin_result, quantity),
                )
                report.ff_max_rel_err = max(report.ff_max_rel_err, err)
                if err > ff_rtol:
                    report.mismatches.append(
                        Mismatch(
                            check="fast-forward",
                            scenario=spec.name,
                            point=str(twin_task.key),
                            detail=(
                                f"{quantity} rel err {err:.3e} exceeds "
                                f"{ff_rtol:.0e}"
                            ),
                        )
                    )

    # ------------------------------------------------------------------
    # Phase D: batch-backend twins of the eligible specs.  The twin spec
    # carries ``backend="batch"`` — its fingerprint (and the executor's
    # cache keys) move with it, so batch results never shadow the exact
    # baseline in the cache — and runs under a batch executor, which
    # folds the shared-gear points into one recording per node count.
    say(f"batch twins: {len(batch_eligible)} specs")
    if batch_eligible:
        batch_executor = Executor(
            jobs=jobs, cache=cache, chunk_size=chunk_size, backend="batch"
        )
        for spec in (s for s in specs if s.name in batch_eligible):
            twin = replace(spec, name=f"{spec.name}+batch", backend="batch")
            twin_tasks = twin.tasks()
            report.batch_twins += 1
            report.batch_points += len(twin_tasks)
            twin_results = batch_executor.run(twin_tasks)
            exact_tasks = exact_tasks_by_name[spec.name]
            for exact_task, twin_task, twin_result in zip(
                exact_tasks, twin_tasks, twin_results
            ):
                (exact_result,) = serial.run([exact_task])
                for quantity in ("time", "energy"):
                    err = _rel_err(
                        getattr(exact_result, quantity),
                        getattr(twin_result, quantity),
                    )
                    report.batch_max_rel_err = max(
                        report.batch_max_rel_err, err
                    )
                    if err > batch_rtol:
                        report.mismatches.append(
                            Mismatch(
                                check="batch",
                                scenario=spec.name,
                                point=str(twin_task.key),
                                detail=(
                                    f"{quantity} rel err {err:.3e} exceeds "
                                    f"{batch_rtol:.0e}"
                                ),
                            )
                        )
        accounting = batch_executor.batch_report
        report.batch_groups = accounting.groups
        report.batch_grouped_points = accounting.grouped_points
        report.batch_fallback_points = accounting.fallback_points
        report.batch_tape_hits = accounting.tape_hits
        report.batch_tape_misses = accounting.tape_misses

    report.cache_hits = cache.stats.hits
    report.cache_misses = cache.stats.misses
    report.cache_stores = cache.stats.stores
    report.cache_evicted = cache.stats.evicted
    report.cache_invalidated = cache.stats.invalidated
    report.elapsed_s = time.perf_counter() - start
    say(report.render())
    return report
