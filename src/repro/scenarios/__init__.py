"""Declarative scenarios: specs, registry, generated packs, validation.

Importing this package populates :data:`REGISTRY` with the paper's
artifacts (:mod:`repro.scenarios.paper`) and the generated packs
(:mod:`repro.scenarios.packs`).
"""

from repro.scenarios import packs as _packs  # noqa: F401  (registers packs)
from repro.scenarios import paper as _paper  # noqa: F401  (registers paper sets)
from repro.scenarios.packs import (
    FF_ELIGIBLE_TAG,
    FF_KNOBS,
    total_points,
    unique_specs,
    validation_pack,
)
from repro.scenarios.paper import Figure5Plan, figure5_plans
from repro.scenarios.registry import REGISTRY, RegistryEntry, ScenarioRegistry
from repro.scenarios.spec import (
    KIND_CALIBRATION,
    KIND_GEAR_SWEEP,
    KIND_MEASUREMENT,
    SPEC_VERSION,
    ClusterRef,
    PolicyRef,
    ScenarioSpec,
    WorkloadRef,
    dump_specs,
    expand,
    load_specs,
)
from repro.scenarios.validation import (
    FF_RTOL,
    Mismatch,
    ValidationReport,
    run_validation,
)

__all__ = [
    "FF_ELIGIBLE_TAG",
    "FF_KNOBS",
    "FF_RTOL",
    "KIND_CALIBRATION",
    "KIND_GEAR_SWEEP",
    "KIND_MEASUREMENT",
    "Mismatch",
    "REGISTRY",
    "RegistryEntry",
    "ScenarioRegistry",
    "ClusterRef",
    "Figure5Plan",
    "PolicyRef",
    "SPEC_VERSION",
    "ScenarioSpec",
    "ValidationReport",
    "WorkloadRef",
    "dump_specs",
    "expand",
    "figure5_plans",
    "load_specs",
    "run_validation",
    "total_points",
    "unique_specs",
    "validation_pack",
]
